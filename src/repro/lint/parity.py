"""Engine-parity rules (P2xx): the fast engine must consume every knob.

PR 2 introduced a second execution engine (``core/fastpath.py``) pinned
to the reference engine by a differential test matrix.  That matrix can
only sweep knobs it already knows about: a *new* ``Simulator.__init__``
parameter that the fast engine ignores produces silently skewed results
until someone extends the matrix.  These rules close that gap
statically:

* ``P201`` — every ``Simulator.__init__`` parameter must taint at least
  one ``self.*`` attribute that ``core/fastpath.py`` reads off the
  simulator (via ``sim.<attr>`` / ``self._sim.<attr>``).  Taint is the
  shared forward pass from :mod:`repro.lint.dataflow`
  (:func:`~repro.lint.dataflow.constructor_taint`): a parameter flows
  through local assignments into stored attributes (``budgets`` →
  ``self.caches`` via ``make_cache(policy, budgets[node] * ...)``).
  The ``engine`` parameter is the dispatch knob itself and is exempt.
* ``P202`` — every ``SimulationResult`` dataclass field must be passed
  to the ``cls(...)`` call inside ``from_counters``, the shared
  finalizer both engines funnel through; an unwired field would let one
  engine populate it and the other silently default it.
"""

from __future__ import annotations

import ast

from . import rules
from .astutil import find_class, find_method
from .dataflow import constructor_taint
from .diagnostics import Diagnostic

#: ``Simulator.__init__`` parameters that select between engines rather
#: than configure a run; by construction the fast engine never reads
#: them back.
DISPATCH_PARAMS = frozenset({"engine"})


def check_parity(
    engine_path: str,
    engine_tree: ast.Module,
    fastpath_tree: ast.Module,
    metrics_path: str,
    metrics_tree: ast.Module,
) -> list[Diagnostic]:
    """Run both parity rules over the engine/fastpath/metrics trio."""
    out = _check_knobs(engine_path, engine_tree, fastpath_tree)
    out.extend(_check_result_fields(metrics_path, metrics_tree))
    return out


# ----------------------------------------------------------------------
# P201: Simulator knobs vs fast-engine consumption
# ----------------------------------------------------------------------
def _check_knobs(
    engine_path: str,
    engine_tree: ast.Module,
    fastpath_tree: ast.Module,
) -> list[Diagnostic]:
    simulator = find_class(engine_tree, "Simulator")
    if simulator is None:
        return []
    init = find_method(simulator, "__init__")
    if init is None:
        return []
    params = [
        a
        for a in (
            init.args.posonlyargs + init.args.args + init.args.kwonlyargs
        )
        if a.arg != "self"
    ]
    attr_taint = constructor_taint(init, {a.arg for a in params})
    consumed = _simulator_attrs_read(fastpath_tree)
    out: list[Diagnostic] = []
    for param in params:
        if param.arg in DISPATCH_PARAMS:
            continue
        stored = {
            attr for attr, taints in attr_taint.items() if param.arg in taints
        }
        if not stored:
            message = (
                f"Simulator knob `{param.arg}` is never stored on the "
                "simulator, so the fast engine cannot consume it"
            )
        elif not stored & consumed:
            attrs = ", ".join(sorted(stored))
            message = (
                f"Simulator knob `{param.arg}` (stored as {attrs}) is "
                "never read by the fast engine in core/fastpath.py; the "
                "engines would silently diverge"
            )
        else:
            continue
        out.append(
            Diagnostic(
                rule=rules.PARITY_KNOB,
                path=engine_path,
                line=param.lineno,
                col=param.col_offset,
                message=message,
            )
        )
    return out


def _simulator_attrs_read(fastpath_tree: ast.Module) -> set[str]:
    """Attributes read off the simulator anywhere in core/fastpath.py.

    The fast engine receives the simulator as a parameter named ``sim``
    and stores it as ``self._sim``; both access spellings count.
    """
    consumed: set[str] = set()
    for node in ast.walk(fastpath_tree):
        if not isinstance(node, ast.Attribute):
            continue
        value = node.value
        if isinstance(value, ast.Name) and value.id == "sim":
            consumed.add(node.attr)
        elif (
            isinstance(value, ast.Attribute)
            and value.attr in ("_sim", "sim")
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            consumed.add(node.attr)
    return consumed


# ----------------------------------------------------------------------
# P202: SimulationResult fields vs from_counters
# ----------------------------------------------------------------------
def _check_result_fields(
    metrics_path: str, metrics_tree: ast.Module
) -> list[Diagnostic]:
    result_cls = find_class(metrics_tree, "SimulationResult")
    if result_cls is None:
        return []
    fields = [
        stmt
        for stmt in result_cls.body
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
    ]
    factory = find_method(result_cls, "from_counters")
    if factory is None:
        if not fields:
            return []
        return [
            Diagnostic(
                rule=rules.PARITY_RESULT_FIELD,
                path=metrics_path,
                line=result_cls.lineno,
                col=result_cls.col_offset,
                message=(
                    "SimulationResult has no from_counters factory; both "
                    "engines must funnel through one shared finalizer"
                ),
            )
        ]
    produced = _factory_outputs(factory, fields)
    out: list[Diagnostic] = []
    for field in fields:
        assert isinstance(field.target, ast.Name)
        if field.target.id not in produced:
            out.append(
                Diagnostic(
                    rule=rules.PARITY_RESULT_FIELD,
                    path=metrics_path,
                    line=field.lineno,
                    col=field.col_offset,
                    message=(
                        f"SimulationResult field `{field.target.id}` is not "
                        "produced by from_counters; one engine could set it "
                        "and the other silently default it"
                    ),
                )
            )
    return out


def _factory_outputs(
    factory: ast.FunctionDef | ast.AsyncFunctionDef,
    fields: list[ast.AnnAssign],
) -> set[str]:
    """Field names the ``cls(...)`` call inside ``from_counters`` fills."""
    field_names = [
        field.target.id
        for field in fields
        if isinstance(field.target, ast.Name)
    ]
    produced: set[str] = set()
    for node in ast.walk(factory):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "cls"
        ):
            produced.update(
                kw.arg for kw in node.keywords if kw.arg is not None
            )
            # Positional args fill fields in declaration order.
            produced.update(field_names[: len(node.args)])
    return produced
