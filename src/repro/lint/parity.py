"""Engine-parity rules (P2xx): the fast engine must consume every knob.

PR 2 introduced a second execution engine (``core/fastpath.py``) pinned
to the reference engine by a differential test matrix.  That matrix can
only sweep knobs it already knows about: a *new* ``Simulator.__init__``
parameter that the fast engine ignores produces silently skewed results
until someone extends the matrix.  These rules close that gap
statically:

* ``P201`` — every ``Simulator.__init__`` parameter must taint at least
  one ``self.*`` attribute that ``core/fastpath.py`` reads off the
  simulator (via ``sim.<attr>`` / ``self._sim.<attr>``).  Taint is a
  simple forward pass over the constructor: a parameter flows through
  local assignments into stored attributes (``budgets`` →
  ``self.caches`` via ``make_cache(policy, budgets[node] * ...)``).
  The ``engine`` parameter is the dispatch knob itself and is exempt.
* ``P202`` — every ``SimulationResult`` dataclass field must be passed
  to the ``cls(...)`` call inside ``from_counters``, the shared
  finalizer both engines funnel through; an unwired field would let one
  engine populate it and the other silently default it.
"""

from __future__ import annotations

import ast

from . import rules
from .astutil import find_class, find_method
from .diagnostics import Diagnostic

#: ``Simulator.__init__`` parameters that select between engines rather
#: than configure a run; by construction the fast engine never reads
#: them back.
DISPATCH_PARAMS = frozenset({"engine"})


def check_parity(
    engine_path: str,
    engine_tree: ast.Module,
    fastpath_tree: ast.Module,
    metrics_path: str,
    metrics_tree: ast.Module,
) -> list[Diagnostic]:
    """Run both parity rules over the engine/fastpath/metrics trio."""
    out = _check_knobs(engine_path, engine_tree, fastpath_tree)
    out.extend(_check_result_fields(metrics_path, metrics_tree))
    return out


# ----------------------------------------------------------------------
# P201: Simulator knobs vs fast-engine consumption
# ----------------------------------------------------------------------
def _check_knobs(
    engine_path: str,
    engine_tree: ast.Module,
    fastpath_tree: ast.Module,
) -> list[Diagnostic]:
    simulator = find_class(engine_tree, "Simulator")
    if simulator is None:
        return []
    init = find_method(simulator, "__init__")
    if init is None:
        return []
    params = [
        a
        for a in (
            init.args.posonlyargs + init.args.args + init.args.kwonlyargs
        )
        if a.arg != "self"
    ]
    attr_taint = _constructor_taint(init, {a.arg for a in params})
    consumed = _simulator_attrs_read(fastpath_tree)
    out: list[Diagnostic] = []
    for param in params:
        if param.arg in DISPATCH_PARAMS:
            continue
        stored = {
            attr for attr, taints in attr_taint.items() if param.arg in taints
        }
        if not stored:
            message = (
                f"Simulator knob `{param.arg}` is never stored on the "
                "simulator, so the fast engine cannot consume it"
            )
        elif not stored & consumed:
            attrs = ", ".join(sorted(stored))
            message = (
                f"Simulator knob `{param.arg}` (stored as {attrs}) is "
                "never read by the fast engine in core/fastpath.py; the "
                "engines would silently diverge"
            )
        else:
            continue
        out.append(
            Diagnostic(
                rule=rules.PARITY_KNOB,
                path=engine_path,
                line=param.lineno,
                col=param.col_offset,
                message=message,
            )
        )
    return out


def _constructor_taint(
    init: ast.FunctionDef | ast.AsyncFunctionDef,
    params: set[str],
) -> dict[str, set[str]]:
    """Stored attribute name -> set of __init__ params that taint it.

    A forward pass in statement order: local names accumulate the
    parameter taint of the names on their right-hand side, and every
    assignment to ``self.X`` (or ``self.X[...]``) charges the taint of
    its value to attribute ``X``.  Loop/with/if bodies are walked in
    source order; that over-approximates reachability, which is the
    safe direction for this rule (it can only make a knob look *more*
    consumed locally, never hide a missing fast-engine read).
    """
    taint: dict[str, set[str]] = {p: {p} for p in params}
    attrs: dict[str, set[str]] = {}

    def names_taint(expr: ast.expr) -> set[str]:
        found: set[str] = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Name):
                found |= taint.get(node.id, set())
        return found

    def visit(stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                value = stmt.value
                if value is None:
                    continue
                value_taint = names_taint(value)
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    for name in _attr_targets(target):
                        attrs.setdefault(name, set()).update(value_taint)
                    for name in _name_targets(target):
                        taint.setdefault(name, set()).update(value_taint)
            elif isinstance(stmt, ast.For):
                iter_taint = names_taint(stmt.iter)
                for name in _name_targets(stmt.target):
                    taint.setdefault(name, set()).update(iter_taint)
                visit(stmt.body)
                visit(stmt.orelse)
            elif isinstance(stmt, ast.While):
                visit(stmt.body)
                visit(stmt.orelse)
            elif isinstance(stmt, ast.If):
                visit(stmt.body)
                visit(stmt.orelse)
            elif isinstance(stmt, ast.With):
                visit(stmt.body)
            elif isinstance(stmt, ast.Try):
                visit(stmt.body)
                for handler in stmt.handlers:
                    visit(handler.body)
                visit(stmt.orelse)
                visit(stmt.finalbody)
            elif isinstance(stmt, ast.Expr):
                # Method calls like `self.caches[...].insert(...)` don't
                # store new state; preload insertion happens via
                # `self._insert`, whose inputs are already attributes.
                continue

    visit(init.body)
    return attrs


def _attr_targets(target: ast.expr) -> list[str]:
    """Attribute names written by one assignment target on ``self``."""
    node = target
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return [node.attr]
    if isinstance(node, (ast.Tuple, ast.List)):
        out: list[str] = []
        for element in node.elts:
            out.extend(_attr_targets(element))
        return out
    return []


def _name_targets(target: ast.expr) -> list[str]:
    """Local names written by one assignment target.

    ``caches[node] = ...`` taints the local ``caches`` container, so
    subscript targets unwrap to their base name.
    """
    while isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Starred):
        return _name_targets(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for element in target.elts:
            out.extend(_name_targets(element))
        return out
    return []


def _simulator_attrs_read(fastpath_tree: ast.Module) -> set[str]:
    """Attributes read off the simulator anywhere in core/fastpath.py.

    The fast engine receives the simulator as a parameter named ``sim``
    and stores it as ``self._sim``; both access spellings count.
    """
    consumed: set[str] = set()
    for node in ast.walk(fastpath_tree):
        if not isinstance(node, ast.Attribute):
            continue
        value = node.value
        if isinstance(value, ast.Name) and value.id == "sim":
            consumed.add(node.attr)
        elif (
            isinstance(value, ast.Attribute)
            and value.attr in ("_sim", "sim")
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            consumed.add(node.attr)
    return consumed


# ----------------------------------------------------------------------
# P202: SimulationResult fields vs from_counters
# ----------------------------------------------------------------------
def _check_result_fields(
    metrics_path: str, metrics_tree: ast.Module
) -> list[Diagnostic]:
    result_cls = find_class(metrics_tree, "SimulationResult")
    if result_cls is None:
        return []
    fields = [
        stmt
        for stmt in result_cls.body
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
    ]
    factory = find_method(result_cls, "from_counters")
    if factory is None:
        if not fields:
            return []
        return [
            Diagnostic(
                rule=rules.PARITY_RESULT_FIELD,
                path=metrics_path,
                line=result_cls.lineno,
                col=result_cls.col_offset,
                message=(
                    "SimulationResult has no from_counters factory; both "
                    "engines must funnel through one shared finalizer"
                ),
            )
        ]
    produced = _factory_outputs(factory, fields)
    out: list[Diagnostic] = []
    for field in fields:
        assert isinstance(field.target, ast.Name)
        if field.target.id not in produced:
            out.append(
                Diagnostic(
                    rule=rules.PARITY_RESULT_FIELD,
                    path=metrics_path,
                    line=field.lineno,
                    col=field.col_offset,
                    message=(
                        f"SimulationResult field `{field.target.id}` is not "
                        "produced by from_counters; one engine could set it "
                        "and the other silently default it"
                    ),
                )
            )
    return out


def _factory_outputs(
    factory: ast.FunctionDef | ast.AsyncFunctionDef,
    fields: list[ast.AnnAssign],
) -> set[str]:
    """Field names the ``cls(...)`` call inside ``from_counters`` fills."""
    field_names = [
        field.target.id
        for field in fields
        if isinstance(field.target, ast.Name)
    ]
    produced: set[str] = set()
    for node in ast.walk(factory):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "cls"
        ):
            produced.update(
                kw.arg for kw in node.keywords if kw.arg is not None
            )
            # Positional args fill fields in declaration order.
            produced.update(field_names[: len(node.args)])
    return produced
