"""Determinism rules (D1xx): every random draw flows through a seeded
``np.random.Generator`` and nothing reads wall clocks or OS entropy.

The paper's quantitative claims rest on bit-identical seeded runs, so
inside the simulation packages (:data:`repro.lint.rules.DETERMINISM_PACKAGES`)
these rules flag:

* ``D101`` — importing stdlib ``random`` or ``secrets``;
* ``D102`` — calling ``time.time``/``datetime.now``/``os.urandom``-class
  entropy sources;
* ``D103`` — ``np.random.default_rng()`` with no seed, and any call on
  the legacy global ``numpy.random`` state (``np.random.seed``,
  ``np.random.randint``, ``RandomState``, ...);
* ``D104`` — a function that *accepts* an ``rng``/``seed`` parameter but
  also constructs its own generator (two streams where the caller
  injected one); constructing from the ``seed`` parameter itself is the
  endorsed pattern and passes;
* ``D105`` (warning) — ``time.monotonic``/``time.sleep``: legitimate for
  orchestration deadlines, a bug if it ever feeds simulated results.
"""

from __future__ import annotations

import ast

from . import rules
from .astutil import import_map, resolve
from .diagnostics import Diagnostic

#: Modules whose import alone is a determinism error.
_BANNED_MODULES = {"random", "secrets"}

#: Calls that read the wall clock or OS entropy (D102).
_ENTROPY_CALLS = {
    "time.time",
    "time.time_ns",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Scheduling-clock calls (D105, warning severity).
_SCHEDULING_CALLS = {
    "time.monotonic",
    "time.monotonic_ns",
    "time.sleep",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
}

#: numpy.random attributes that are fine to touch: the modern seeded
#: Generator construction surface.
_NUMPY_RANDOM_OK = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: Generator constructors a function with an injected rng/seed must not
#: call (D104).
_GENERATOR_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
    "random.Random",
    "random.SystemRandom",
}


def applies_to(module: str) -> bool:
    """Whether the D-family runs on a module (by dotted name)."""
    for package in rules.DETERMINISM_PACKAGES:
        if module == package or module.startswith(package + "."):
            return True
    return False


def check_module(
    path: str, module: str, tree: ast.Module
) -> list[Diagnostic]:
    """Run the determinism family over one parsed module."""
    if not applies_to(module):
        return []
    aliases = import_map(tree)
    out: list[Diagnostic] = []

    def report(rule, node: ast.AST, message: str) -> None:
        out.append(
            Diagnostic(
                rule=rule,
                path=path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".", 1)[0]
                if root in _BANNED_MODULES:
                    report(
                        rules.STDLIB_RANDOM,
                        node,
                        f"import of stdlib `{alias.name}`; draw through an "
                        "injected seeded np.random.Generator instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module:
                root = node.module.split(".", 1)[0]
                if root in _BANNED_MODULES:
                    names = ", ".join(a.name for a in node.names)
                    report(
                        rules.STDLIB_RANDOM,
                        node,
                        f"`from {node.module} import {names}`; draw through "
                        "an injected seeded np.random.Generator instead",
                    )
        elif isinstance(node, ast.Call):
            full = resolve(node.func, aliases)
            if full is None:
                continue
            if full in _ENTROPY_CALLS:
                report(
                    rules.WALL_CLOCK,
                    node,
                    f"call to `{full}` injects wall-clock/OS entropy into "
                    "a simulation package; use the simulated clock or an "
                    "injected Generator",
                )
            elif full in _SCHEDULING_CALLS:
                report(
                    rules.SCHEDULING_CLOCK,
                    node,
                    f"call to `{full}`: acceptable for orchestration "
                    "deadlines, never for simulated state (suppress with "
                    "a justification if this is orchestration)",
                )
            elif full.startswith("numpy.random."):
                attr = full[len("numpy.random.") :]
                if attr == "default_rng":
                    if not node.args and not node.keywords:
                        report(
                            rules.NUMPY_GLOBAL_RNG,
                            node,
                            "np.random.default_rng() without a seed is "
                            "entropy-seeded; pass a pinned literal seed or "
                            "a propagated seed/SeedSequence",
                        )
                elif attr not in _NUMPY_RANDOM_OK:
                    report(
                        rules.NUMPY_GLOBAL_RNG,
                        node,
                        f"`{full}` uses numpy's legacy global RNG state; "
                        "use a seeded np.random.Generator",
                    )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.extend(_check_shadowed_rng(path, node, aliases))
    return out


def _check_shadowed_rng(
    path: str,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    aliases: dict[str, str],
) -> list[Diagnostic]:
    """D104: a function with an injected rng/seed builds its own stream."""
    params = {
        a.arg
        for a in (
            func.args.posonlyargs + func.args.args + func.args.kwonlyargs
        )
    }
    has_rng = "rng" in params
    has_seed = "seed" in params
    if not has_rng and not has_seed:
        return []
    out: list[Diagnostic] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        full = resolve(node.func, aliases)
        if full not in _GENERATOR_CONSTRUCTORS:
            continue
        if not has_rng and has_seed and _mentions_name(node, "seed"):
            # Constructing the generator *from* the injected seed is the
            # endorsed pattern (e.g. `default_rng(seed)`).
            continue
        what = "rng" if has_rng else "seed"
        out.append(
            Diagnostic(
                rule=rules.SHADOWED_RNG,
                path=path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"`{func.name}` accepts `{what}` but constructs its own "
                    f"generator via `{full}`; draw from the injected stream"
                ),
            )
        )
    return out


def _mentions_name(call: ast.Call, name: str) -> bool:
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for node in ast.walk(arg):
            if isinstance(node, ast.Name) and node.id == name:
                return True
    return False
