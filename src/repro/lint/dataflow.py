"""Reusable data-flow primitives for repro.lint.

Two engines live here:

* the **forward taint pass** (:func:`constructor_taint`, plus the
  :func:`attr_targets` / :func:`name_targets` target decomposers) —
  originally a private walk inside ``parity.py``, now shared: a set of
  seed names flows through local assignments in statement order and
  every ``self.X`` store charges the taint of its value to attribute
  ``X``.  Over-approximate on reachability (loop/if/try bodies are
  walked unconditionally), which is the safe direction for every rule
  built on it;
* the **backward origin resolver** (:class:`OriginResolver`) — answers
  "where does this expression's value come from" *interprocedurally*:
  through local assignments, function parameters (mapped onto caller
  arguments at every known call site, including ``functools.partial``
  bindings, keyword-only params, and declared defaults), module-level
  constants (across imports), ``self.*`` attributes (chased into
  ``__init__``), and resolved call return values.  The answer is a set
  of :class:`Origin` leaves — literals, unresolved parameters, external
  calls, attribute reads — that rule families classify (is this seed
  SeedSequence-derived?  is this observed value wall-clock tainted?).

Both are static over-approximations with bounded depth; unresolvable
expressions bottom out in explicit ``Origin`` kinds rather than being
silently dropped, so rules can choose how to treat uncertainty.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .astutil import dotted
from .graph import CallGraph, CallSite, FunctionInfo, ModuleGraph

#: Interprocedural hop budget for the origin resolver.
MAX_DEPTH = 8
#: Call sites examined per parameter (breadth bound).
MAX_SITES = 25


# ----------------------------------------------------------------------
# Forward taint (shared with parity.py)
# ----------------------------------------------------------------------
def attr_targets(target: ast.expr) -> list[str]:
    """Attribute names written by one assignment target on ``self``."""
    node = target
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return [node.attr]
    if isinstance(node, (ast.Tuple, ast.List)):
        out: list[str] = []
        for element in node.elts:
            out.extend(attr_targets(element))
        return out
    return []


def name_targets(target: ast.expr) -> list[str]:
    """Local names written by one assignment target.

    ``caches[node] = ...`` taints the local ``caches`` container, so
    subscript targets unwrap to their base name.
    """
    while isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Starred):
        return name_targets(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for element in target.elts:
            out.extend(name_targets(element))
        return out
    return []


def constructor_taint(
    init: ast.FunctionDef | ast.AsyncFunctionDef,
    params: set[str],
) -> dict[str, set[str]]:
    """Stored attribute name -> set of seed names that taint it.

    A forward pass in statement order: local names accumulate the
    seed-taint of the names on their right-hand side, and every
    assignment to ``self.X`` (or ``self.X[...]``) charges the taint of
    its value to attribute ``X``.  Loop/with/if bodies are walked in
    source order; that over-approximates reachability, which is the
    safe direction (it can only make a seed look *more* consumed
    locally, never hide a missing downstream read).
    """
    taint: dict[str, set[str]] = {p: {p} for p in params}
    attrs: dict[str, set[str]] = {}

    def names_taint(expr: ast.expr) -> set[str]:
        found: set[str] = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Name):
                found |= taint.get(node.id, set())
        return found

    def visit(stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                value = stmt.value
                if value is None:
                    continue
                value_taint = names_taint(value)
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    for name in attr_targets(target):
                        attrs.setdefault(name, set()).update(value_taint)
                    for name in name_targets(target):
                        taint.setdefault(name, set()).update(value_taint)
            elif isinstance(stmt, ast.For):
                iter_taint = names_taint(stmt.iter)
                for name in name_targets(stmt.target):
                    taint.setdefault(name, set()).update(iter_taint)
                visit(stmt.body)
                visit(stmt.orelse)
            elif isinstance(stmt, ast.While):
                visit(stmt.body)
                visit(stmt.orelse)
            elif isinstance(stmt, ast.If):
                visit(stmt.body)
                visit(stmt.orelse)
            elif isinstance(stmt, ast.With):
                visit(stmt.body)
            elif isinstance(stmt, ast.Try):
                visit(stmt.body)
                for handler in stmt.handlers:
                    visit(handler.body)
                visit(stmt.orelse)
                visit(stmt.finalbody)
            elif isinstance(stmt, ast.Expr):
                # Bare calls like `self.caches[...].insert(...)` store no
                # new state for this pass.
                continue

    visit(init.body)
    return attrs


# ----------------------------------------------------------------------
# Backward origin resolution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Origin:
    """One leaf of a backward slice.

    Kinds: ``literal`` (a constant; ``value`` holds it), ``module-const``
    (a named module-level literal; ``value`` holds it, ``detail`` the
    dotted name), ``param`` (a parameter with no known caller),
    ``default`` (a parameter default that is not a literal), ``call``
    (an unresolved call; ``detail`` is the dotted callee), ``attr`` (an
    attribute read; ``detail`` like ``config.seed``), ``name`` (an
    unresolvable bare name).
    """

    kind: str
    detail: str
    value: object = None


def _scope_statements(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.stmt]:
    """Statements in the function's own scope (nested defs excluded)."""
    out: list[ast.stmt] = []
    stack: list[ast.stmt] = list(node.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        out.append(stmt)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, ast.excepthandler):
                stack.extend(child.body)
    return out


class OriginResolver:
    """Backward interprocedural slicing over a :class:`CallGraph`."""

    def __init__(self, graph: ModuleGraph, callgraph: CallGraph):
        self.graph = graph
        self.callgraph = callgraph
        self._locals_cache: dict[str, dict[str, list[ast.expr]]] = {}
        self._site_index: dict[str, dict[int, CallSite]] = {}

    # -- public API ----------------------------------------------------
    def origins(self, function: FunctionInfo, expr: ast.expr) -> set[Origin]:
        """Every origin leaf the expression's value can come from."""
        return self._expr(function, expr, MAX_DEPTH, frozenset())

    def callers_with_param(
        self,
        function: FunctionInfo,
        names: frozenset[str],
        depth: int = 6,
    ) -> FunctionInfo | None:
        """A transitive caller carrying a parameter from ``names``.

        Walks the caller graph breadth-first from ``function`` (itself
        excluded) and returns the first function whose signature has a
        parameter in ``names``; None when no such caller exists within
        ``depth`` hops.
        """
        seen = {function.key}
        frontier = [function]
        for _ in range(depth):
            next_frontier: list[FunctionInfo] = []
            for current in frontier:
                for site in self.callgraph.callers.get(current.key, ()):
                    caller = site.caller
                    if caller.key in seen:
                        continue
                    seen.add(caller.key)
                    if caller.param_names() & names:
                        return caller
                    next_frontier.append(caller)
            if not next_frontier:
                return None
            frontier = next_frontier
        return None

    # -- internals -----------------------------------------------------
    def _local_defs(self, function: FunctionInfo) -> dict[str, list[ast.expr]]:
        """Name -> right-hand-side expressions assigned in this scope."""
        cached = self._locals_cache.get(function.key)
        if cached is not None:
            return cached
        defs: dict[str, list[ast.expr]] = {}

        def record(target: ast.expr, value: ast.expr) -> None:
            for name in name_targets(target):
                defs.setdefault(name, []).append(value)

        for stmt in _scope_statements(function.node):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    record(target, stmt.value)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                if stmt.value is not None:
                    record(stmt.target, stmt.value)
            elif isinstance(stmt, ast.For):
                record(stmt.target, stmt.iter)
            elif isinstance(stmt, ast.With):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        record(item.optional_vars, item.context_expr)
        for node in ast.walk(function.node):
            if isinstance(node, ast.NamedExpr):
                record(node.target, node.value)
        self._locals_cache[function.key] = defs
        return defs

    def _sites_in(self, function: FunctionInfo) -> dict[int, CallSite]:
        """id(Call node) -> resolved CallSite for calls in ``function``."""
        cached = self._site_index.get(function.key)
        if cached is not None:
            return cached
        index = {
            id(site.call): site
            for site in self.callgraph.callees.get(function.key, ())
        }
        self._site_index[function.key] = index
        return index

    def _expr(
        self,
        function: FunctionInfo,
        expr: ast.expr,
        depth: int,
        stack: frozenset[tuple[str, str]],
    ) -> set[Origin]:
        if depth <= 0:
            return {Origin("name", "<depth-limit>")}
        if isinstance(expr, ast.Constant):
            return {Origin("literal", repr(expr.value), expr.value)}
        if isinstance(expr, ast.Name):
            return self._name(function, expr.id, depth, stack)
        if isinstance(expr, ast.Attribute):
            return self._attribute(function, expr, depth, stack)
        if isinstance(expr, ast.Call):
            return self._call(function, expr, depth, stack)
        if isinstance(expr, ast.BinOp):
            return self._expr(function, expr.left, depth, stack) | self._expr(
                function, expr.right, depth, stack
            )
        if isinstance(expr, ast.UnaryOp):
            return self._expr(function, expr.operand, depth, stack)
        if isinstance(expr, ast.BoolOp):
            out: set[Origin] = set()
            for value in expr.values:
                out |= self._expr(function, value, depth, stack)
            return out
        if isinstance(expr, ast.IfExp):
            return self._expr(function, expr.body, depth, stack) | self._expr(
                function, expr.orelse, depth, stack
            )
        if isinstance(expr, ast.NamedExpr):
            return self._expr(function, expr.value, depth, stack)
        if isinstance(expr, ast.Subscript):
            return self._expr(function, expr.value, depth, stack)
        if isinstance(expr, ast.Starred):
            return self._expr(function, expr.value, depth, stack)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for element in expr.elts:
                out |= self._expr(function, element, depth, stack)
            return out
        if isinstance(expr, ast.Dict):
            out = set()
            for value in expr.values:
                if value is not None:
                    out |= self._expr(function, value, depth, stack)
            return out
        if isinstance(expr, ast.Compare):
            out = self._expr(function, expr.left, depth, stack)
            for comparator in expr.comparators:
                out |= self._expr(function, comparator, depth, stack)
            return out
        if isinstance(expr, ast.JoinedStr):
            out = set()
            for value in expr.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self._expr(function, value.value, depth, stack)
            return out
        if isinstance(expr, ast.Lambda):
            return {Origin("name", "<lambda>")}
        # Comprehensions and anything else: fall back to the names read.
        out = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Name):
                out |= self._name(function, node.id, depth - 1, stack)
        return out or {Origin("name", "<opaque>")}

    def _name(
        self,
        function: FunctionInfo,
        name: str,
        depth: int,
        stack: frozenset[tuple[str, str]],
    ) -> set[Origin]:
        key = (function.key, f"name:{name}")
        if key in stack:
            return set()
        stack = stack | {key}
        out: set[Origin] = set()
        defs = self._local_defs(function).get(name, ())
        for value in defs:
            out |= self._expr(function, value, depth, stack)
        if name in function.param_names():
            out |= self._param(function, name, depth, stack)
            return out
        if out:
            return out
        # Closure lookup: nested functions read the enclosing scope.
        parent_key = function.parent_function
        info = self.graph.modules.get(function.module)
        while parent_key is not None and info is not None:
            parent = info.functions.get(parent_key)
            if parent is None:
                break
            parent_defs = self._local_defs(parent).get(name, ())
            for value in parent_defs:
                out |= self._expr(parent, value, depth, stack)
            if name in parent.param_names():
                out |= self._param(parent, name, depth, stack)
            if out:
                return out
            parent_key = parent.parent_function
        # Module-level constant, possibly imported from elsewhere.
        value = self.graph.constant_value(function.module, name)
        resolved = self.graph.resolve_name(function.module, name) or name
        if value is not None:
            return {Origin("module-const", resolved, value)}
        if info is not None and name in info.constants:
            return self._expr(function, info.constants[name], depth, stack)
        return {Origin("name", resolved)}

    def _param(
        self,
        function: FunctionInfo,
        name: str,
        depth: int,
        stack: frozenset[tuple[str, str]],
    ) -> set[Origin]:
        key = (function.key, f"param:{name}")
        if key in stack:
            return set()
        stack = stack | {key}
        sites = self.callgraph.callers.get(function.key, ())[:MAX_SITES]
        out: set[Origin] = set()
        default = function.default_for(name)
        for site in sites:
            bound = self._bind(site, function, name)
            if bound is not None:
                out |= self._expr(site.caller, bound, depth - 1, stack)
            elif default is not None:
                out |= self._default_origins(function, default, depth, stack)
            else:
                # *args/**kwargs forwarding or star-splat at the site.
                out.add(Origin("param", f"{function.key}:{name}"))
        if not sites:
            if default is not None:
                out |= self._default_origins(function, default, depth, stack)
            out.add(Origin("param", f"{function.key}:{name}"))
        return out

    def _default_origins(
        self,
        function: FunctionInfo,
        default: ast.expr,
        depth: int,
        stack: frozenset[tuple[str, str]],
    ) -> set[Origin]:
        """Defaults evaluate in the defining module's scope at def time."""
        if isinstance(default, ast.Constant):
            return {Origin("literal", repr(default.value), default.value)}
        name = dotted(default)
        if name is not None:
            value = self.graph.constant_value(function.module, name)
            resolved = self.graph.resolve_name(function.module, name) or name
            if value is not None:
                return {Origin("module-const", resolved, value)}
            target = self.graph.function_at(resolved)
            if target is not None:
                return {Origin("name", target.key)}
            return {Origin("default", resolved)}
        if isinstance(default, ast.Call):
            callee = dotted(default.func)
            if callee is not None:
                resolved = (
                    self.graph.resolve_name(function.module, callee) or callee
                )
                return {Origin("call", resolved)}
        return {Origin("default", ast.dump(default)[:80])}

    def _attribute(
        self,
        function: FunctionInfo,
        expr: ast.Attribute,
        depth: int,
        stack: frozenset[tuple[str, str]],
    ) -> set[Origin]:
        name = dotted(expr)
        if name is None:
            return {Origin("attr", f"<expr>.{expr.attr}")}
        head, _, _ = name.partition(".")
        # self.X: chase the attribute into __init__ stores.
        if head == "self" and function.owner_class is not None:
            attr = name.split(".")[1]
            key = (function.key, f"self:{attr}")
            if key in stack:
                return set()
            stack = stack | {key}
            info = self.graph.modules.get(function.module)
            init = (
                info.functions.get(f"{function.owner_class}.__init__")
                if info is not None
                else None
            )
            out: set[Origin] = set()
            if init is not None:
                for stmt in _scope_statements(init.node):
                    if isinstance(stmt, ast.Assign):
                        targets = stmt.targets
                        value = stmt.value
                    elif (
                        isinstance(stmt, (ast.AnnAssign, ast.AugAssign))
                        and stmt.value is not None
                    ):
                        targets = [stmt.target]
                        value = stmt.value
                    else:
                        continue
                    for target in targets:
                        if attr in attr_targets(target):
                            out |= self._expr(init, value, depth - 1, stack)
            return out or {Origin("attr", name)}
        # Module/constant reads through imports resolve like names.
        value = self.graph.constant_value(function.module, name)
        resolved = self.graph.resolve_name(function.module, name) or name
        if value is not None:
            return {Origin("module-const", resolved, value)}
        return {Origin("attr", resolved)}

    def _call(
        self,
        function: FunctionInfo,
        expr: ast.Call,
        depth: int,
        stack: frozenset[tuple[str, str]],
    ) -> set[Origin]:
        site = self._sites_in(function).get(id(expr))
        if site is not None and site.callee.qualname.split(".")[-1] != "__init__":
            callee = site.callee
            key = (callee.key, "returns")
            if key in stack:
                return set()
            out: set[Origin] = set()
            returns = [
                stmt
                for stmt in _scope_statements(callee.node)
                if isinstance(stmt, ast.Return) and stmt.value is not None
            ]
            for stmt in returns:
                out |= self._expr(
                    callee, stmt.value, depth - 1, stack | {key}
                )
            return out or {Origin("call", callee.key)}
        if site is not None:
            # Constructor: the value is an instance of the callee's class.
            owner = site.callee.owner_class or site.callee.qualname
            return {Origin("call", f"{site.callee.module}.{owner}")}
        name = dotted(expr.func)
        if name is None:
            if isinstance(expr.func, ast.Attribute):
                out = {Origin("call", f"<expr>.{expr.func.attr}")}
            else:
                out = {Origin("call", "<dynamic>")}
        else:
            resolved = self.graph.resolve_name(function.module, name) or name
            out = {Origin("call", resolved)}
        # An opaque call's value may derive from whatever flows into it
        # (``int(time.time())`` is wall-clock tainted), so the arguments'
        # origins ride along with the call leaf.
        for arg in expr.args:
            out |= self._expr(function, arg, depth - 1, stack)
        for keyword in expr.keywords:
            out |= self._expr(function, keyword.value, depth - 1, stack)
        return out

    def _bind(
        self, site: CallSite, callee: FunctionInfo, name: str
    ) -> ast.expr | None:
        """The caller-side expression bound to parameter ``name``."""
        for keyword in site.bound_keywords:
            if keyword.arg == name:
                return keyword.value
        for keyword in site.call.keywords:
            if keyword.arg == name:
                return keyword.value
        params = [arg.arg for arg in callee.params()]
        if name not in params:
            return None
        index = params.index(name)
        positional = list(site.bound_args) + list(site.call.args)
        kwonly = {arg.arg for arg in callee.node.args.kwonlyargs}
        if name in kwonly:
            return None
        if index < len(positional):
            arg = positional[index]
            if isinstance(arg, ast.Starred):
                return None
            return arg
        return None
