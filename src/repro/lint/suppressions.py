"""Inline suppression comments for repro.lint.

Two forms, both matched anywhere in a physical line:

* ``# lint: disable=D101`` (or a comma list, ``disable=D101,O401``) —
  suppresses those rules on that line only;
* ``# lint: disable-file=D105`` — suppresses the rules for the whole
  file (conventionally placed near the top, next to a justification).

``all`` suppresses every rule.  Ids are case-insensitive.  Suppressions
are intentionally line-scoped (no block/push-pop syntax): a finding
should be silenced exactly where it occurs, next to the comment that
justifies it.
"""

from __future__ import annotations

import re

_PATTERN = re.compile(
    r"#\s*lint:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<ids>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


class SuppressionIndex:
    """Which rule ids are suppressed on which lines of one file."""

    def __init__(
        self,
        by_line: dict[int, frozenset[str]],
        file_wide: frozenset[str],
    ):
        self._by_line = by_line
        self._file_wide = file_wide

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Scan raw source text for suppression comments.

        A plain regex over physical lines is deliberate: it sees
        comments (which the AST drops) and never fails on code that
        does not parse.  False positives would require the literal
        marker inside a string on the same line as a finding — accepted.
        """
        by_line: dict[int, frozenset[str]] = {}
        file_wide: set[str] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "lint:" not in text:
                continue
            for match in _PATTERN.finditer(text):
                ids = frozenset(
                    part.strip().upper()
                    for part in match.group("ids").split(",")
                    if part.strip()
                )
                if match.group("scope"):
                    file_wide |= ids
                else:
                    by_line[lineno] = by_line.get(lineno, frozenset()) | ids
        return cls(by_line, frozenset(file_wide))

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is silenced at ``line``."""
        rule_id = rule_id.upper()
        if rule_id in self._file_wide or "ALL" in self._file_wide:
            return True
        ids = self._by_line.get(line)
        return ids is not None and (rule_id in ids or "ALL" in ids)
