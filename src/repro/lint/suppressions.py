"""Inline suppression comments for repro.lint.

Two forms, matched inside real ``#`` comments:

* ``# lint: disable=D101`` (or a comma list, ``disable=D101,O401``) —
  suppresses those rules on that line only;
* ``# lint: disable-file=D105`` — suppresses the rules for the whole
  file (conventionally placed near the top, next to a justification).

``all`` suppresses every rule.  Ids are case-insensitive.  Suppressions
are intentionally line-scoped (no block/push-pop syntax): a finding
should be silenced exactly where it occurs, next to the comment that
justifies it.

The index keeps every comment as a :class:`Suppression` entry so the
runner can enforce hygiene on the comments themselves: ids that name no
known rule (``E998``) and entries that silenced nothing all run
(``E997`` under ``--strict``).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

_PATTERN = re.compile(
    r"#\s*lint:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<ids>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


@dataclass(frozen=True)
class Suppression:
    """One ``# lint: disable`` comment: where it is and what it names."""

    line: int
    ids: frozenset[str]
    file_wide: bool


class SuppressionIndex:
    """Which rule ids are suppressed on which lines of one file."""

    def __init__(self, entries: list[Suppression]):
        self.entries = entries
        self._by_line: dict[int, list[Suppression]] = {}
        self._file_wide: list[Suppression] = []
        for entry in entries:
            if entry.file_wide:
                self._file_wide.append(entry)
            else:
                self._by_line.setdefault(entry.line, []).append(entry)

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Scan source text for suppression comments.

        Tokenizes so only genuine ``#`` comments count — docstrings that
        *quote* the syntax (this module's own, the rule catalogue's) are
        not suppressions and must not trip the hygiene rules
        (E997/E998).  When tokenization fails (the runner still indexes
        files that do not parse), falls back to a plain regex over
        physical lines, which sees comments but also string contents —
        the pre-hygiene behavior, accepted for broken files.
        """
        entries: list[Suppression] = []
        try:
            for token in tokenize.generate_tokens(
                io.StringIO(source).readline
            ):
                if token.type != tokenize.COMMENT:
                    continue
                entries.extend(cls._parse(token.start[0], token.string))
        except (tokenize.TokenError, SyntaxError, ValueError):
            entries = []
            for lineno, text in enumerate(source.splitlines(), start=1):
                entries.extend(cls._parse(lineno, text))
        return cls(entries)

    @staticmethod
    def _parse(lineno: int, text: str) -> list[Suppression]:
        """Every suppression entry spelled in one comment/line."""
        if "lint:" not in text:
            return []
        found: list[Suppression] = []
        for match in _PATTERN.finditer(text):
            ids = frozenset(
                part.strip().upper()
                for part in match.group("ids").split(",")
                if part.strip()
            )
            if ids:
                found.append(
                    Suppression(
                        line=lineno,
                        ids=ids,
                        file_wide=bool(match.group("scope")),
                    )
                )
        return found

    def match(self, rule_id: str, line: int) -> Suppression | None:
        """The entry silencing ``rule_id`` at ``line``, if any."""
        rule_id = rule_id.upper()
        for entry in self._file_wide:
            if rule_id in entry.ids or "ALL" in entry.ids:
                return entry
        for entry in self._by_line.get(line, ()):
            if rule_id in entry.ids or "ALL" in entry.ids:
                return entry
        return None

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is silenced at ``line``."""
        return self.match(rule_id, line) is not None
