"""Robustness rule (R601): no unbounded waits in the idICN fabric.

The overload-resilience design (PR 6) rests on every wait being
bounded: request queues have a hard capacity, pending-interest entries
have a per-entry timeout, and retry loops have an attempt cap.  An
unbounded queue or an un-exitable loop silently re-introduces the
failure mode the degradation ladder exists to prevent, so inside
``repro.idicn`` this family flags:

* a queue-like container constructed without its capacity bound —
  ``collections.deque`` without ``maxlen``, and the stdlib
  ``queue.Queue``/``LifoQueue``/``PriorityQueue``,
  ``asyncio.Queue``, or ``multiprocessing.Queue`` without ``maxsize``
  (positional capacity arguments count);
* a ``while True:`` (or ``while 1:``) loop containing no ``break`` at
  its own level and no ``return``/``raise`` anywhere inside — nothing
  can ever exit it.  Exits inside nested function definitions do not
  count; a ``break`` inside a nested loop exits that loop, not this
  one.

Both checks are syntactic heuristics: a loop whose exit lives behind a
helper call will be flagged and should either gain an explicit bound or
a targeted suppression comment.
"""

from __future__ import annotations

import ast

from . import rules
from .astutil import import_map, resolve
from .diagnostics import Diagnostic

#: The package the robustness family applies to.
_PACKAGE = "repro.idicn"

#: Queue-like constructors and the keyword that bounds them.
_QUEUE_BOUNDS: dict[str, str] = {
    "collections.deque": "maxlen",
    "queue.Queue": "maxsize",
    "queue.LifoQueue": "maxsize",
    "queue.PriorityQueue": "maxsize",
    "asyncio.Queue": "maxsize",
    "asyncio.LifoQueue": "maxsize",
    "asyncio.PriorityQueue": "maxsize",
    "multiprocessing.Queue": "maxsize",
}

#: Positional index at which the bound may be passed instead
#: (``deque(iterable, maxlen)`` vs ``Queue(maxsize)``).
_BOUND_POSITION: dict[str, int] = {"collections.deque": 1}


def applies_to(module: str) -> bool:
    """Whether the robustness family covers ``module``."""
    return module == _PACKAGE or module.startswith(_PACKAGE + ".")


def check_module(
    path: str, module: str, tree: ast.Module
) -> list[Diagnostic]:
    """R601 diagnostics for one parsed module (empty outside scope)."""
    if not applies_to(module):
        return []
    aliases = import_map(tree)
    out: list[Diagnostic] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = resolve(node.func, aliases)
            if name in _QUEUE_BOUNDS and _unbounded(node, name):
                out.append(
                    Diagnostic(
                        rule=rules.UNBOUNDED_WAIT,
                        path=path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"{name} constructed without "
                            f"{_QUEUE_BOUNDS[name]}: an unbounded queue "
                            "is an unbounded wait under overload"
                        ),
                    )
                )
        elif isinstance(node, ast.While) and _is_forever(node.test):
            if not any(_exits(stmt, top=True) for stmt in node.body):
                out.append(
                    Diagnostic(
                        rule=rules.UNBOUNDED_WAIT,
                        path=path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            "`while True` with no break/return/raise "
                            "can never exit; bound the loop (attempt "
                            "cap, timeout, or explicit exit)"
                        ),
                    )
                )
    return out


def _unbounded(call: ast.Call, name: str) -> bool:
    """Whether a queue-like construction carries no capacity bound."""
    bound = _QUEUE_BOUNDS[name]
    if any(kw.arg == bound for kw in call.keywords):
        return False
    position = _BOUND_POSITION.get(name, 0)
    return len(call.args) <= position


def _is_forever(test: ast.expr) -> bool:
    """``while True`` / ``while 1`` — a loop only its body can end."""
    return isinstance(test, ast.Constant) and (
        test.value is True or test.value == 1
    )


def _exits(stmt: ast.stmt, top: bool) -> bool:
    """Whether ``stmt`` can terminate the loop being checked.

    ``top`` is True while a ``break`` would still bind to that loop;
    it turns False inside nested loops.  Nested function/class bodies
    are opaque — their returns never exit the enclosing loop.
    """
    if isinstance(stmt, ast.Break):
        return top
    if isinstance(stmt, (ast.Return, ast.Raise)):
        return True
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return False
    inner_top = top and not isinstance(
        stmt, (ast.For, ast.AsyncFor, ast.While)
    )
    for field in ("body", "orelse", "finalbody"):
        for child in getattr(stmt, field, []):
            if _exits(child, inner_top):
                return True
    for handler in getattr(stmt, "handlers", []):
        for child in handler.body:
            if _exits(child, inner_top):
                return True
    return False
