"""Seed-flow rules (S7xx): generator seeds must keep their lineage.

The determinism family (D1xx) checks each construction site in
isolation; these rules follow the *value* of the seed argument through
the whole program using the backward origin resolver:

* ``S701`` — the seed handed to ``np.random.default_rng`` /
  ``Generator`` / ``RandomState`` must not trace to an ambient source:
  wall clocks, OS entropy, process ids, ``os.environ``, or another
  unseeded generator.  Such a seed differs between runs, which breaks
  bit-reproducibility even though the construction itself looks seeded.
* ``S702`` — a generator constructed from a bare literal inside a call
  chain that already carries an ``rng``/``seed`` parameter splits the
  deterministic stream: the caller went to the trouble of threading a
  seed and a callee quietly re-seeds from a constant.  ``D104`` flags
  the intra-function case; this is its interprocedural extension (the
  enclosing function itself has no rng/seed parameter, but a transitive
  caller does).  Named module-level constants are exempt — hoisting a
  pinned algorithmic seed to ``_SOMETHING_SEED = 0x...`` both documents
  it and satisfies the rule.
* ``S703`` — a generator constructed at module scope (or as a class
  attribute) is ambient state shared by every caller and across
  ``multiprocessing`` forks; generators must be built inside a
  seeded call chain.
"""

from __future__ import annotations

import ast

from . import rules
from .astutil import dotted
from .dataflow import Origin, OriginResolver
from .diagnostics import Diagnostic
from .graph import CallGraph, FunctionInfo, ModuleGraph

#: Packages whose modules are subject to the seed-flow family.
SEEDFLOW_PACKAGES = (
    "repro.core",
    "repro.cache",
    "repro.workload",
    "repro.idicn",
)

#: Fully-resolved constructors whose first argument is a seed.
GENERATOR_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
    }
)

#: Call origins that vary between runs: the seed is ambient.
AMBIENT_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "os.urandom",
        "os.getrandom",
        "os.getpid",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbits",
        "random.random",
        "random.randint",
        "random.getrandbits",
        "numpy.random.default_rng",
        "numpy.random.random",
        "numpy.random.randint",
    }
)

#: Parameter names that mark a call chain as seed-carrying.
RNG_PARAM_NAMES = frozenset(
    {"rng", "generator", "seed", "base_seed", "random_state", "seed_sequence"}
)

#: Call-origin suffixes that prove SeedSequence-derived lineage.
_SEED_CALL_SUFFIXES = (
    "SeedSequence",
    ".spawn",
    "spawn_seeds",
    "seeded_configs",
    "generate_state",
)


def _is_seed_lineage(origin: Origin) -> bool:
    """Whether one origin leaf carries acceptable seed lineage."""
    if origin.kind == "attr":
        last = origin.detail.rsplit(".", 1)[-1].lower()
        return "seed" in last
    if origin.kind == "param":
        param = origin.detail.rsplit(":", 1)[-1].lower()
        return "seed" in param or param in ("rng", "generator")
    if origin.kind == "call":
        return any(origin.detail.endswith(s) for s in _SEED_CALL_SUFFIXES)
    if origin.kind == "module-const":
        # A *named* constant is a documented, pinned seed.
        return True
    return False


def _is_ambient(origin: Origin) -> bool:
    if origin.kind == "call":
        return origin.detail in AMBIENT_CALLS
    if origin.kind == "literal":
        return origin.value is None
    if origin.kind in ("name", "attr"):
        return "environ" in origin.detail
    return False


def _seed_argument(call: ast.Call) -> ast.expr | None:
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg in ("seed", "bit_generator"):
            return keyword.value
    return None


def _in_scope(module: str) -> bool:
    return any(
        module == package or module.startswith(package + ".")
        for package in SEEDFLOW_PACKAGES
    )


def check_seedflow(
    graph: ModuleGraph, callgraph: CallGraph
) -> list[Diagnostic]:
    """Run S701-S703 over every in-scope module of the program graph."""
    resolver = OriginResolver(graph, callgraph)
    out: list[Diagnostic] = []
    for module_name in sorted(graph.modules):
        if not _in_scope(module_name):
            continue
        info = graph.modules[module_name]
        out.extend(_check_module_scope(graph, info))
        for qualname in sorted(info.functions):
            function = info.functions[qualname]
            out.extend(_check_function(graph, resolver, function))
    return out


def _constructor_calls(
    graph: ModuleGraph, module: str, node: ast.AST
) -> list[ast.Call]:
    found: list[ast.Call] = []
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        name = dotted(child.func)
        if name is None:
            continue
        resolved = graph.resolve_name(module, name) or name
        if resolved in GENERATOR_CONSTRUCTORS:
            found.append(child)
    return found


def _check_module_scope(
    graph: ModuleGraph, info
) -> list[Diagnostic]:
    """S703: generator constructions outside any function body."""
    out: list[Diagnostic] = []
    # Collect statements at module scope and directly in class bodies,
    # without descending into function bodies.
    stack: list[ast.stmt] = list(info.tree.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(stmt, ast.ClassDef):
            stack.extend(stmt.body)
            continue
        for call in _constructor_calls(graph, info.name, stmt):
            out.append(
                Diagnostic(
                    rule=rules.MODULE_SCOPE_RNG,
                    path=info.path,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        "generator constructed at module scope is ambient "
                        "state shared by every caller (and across worker "
                        "forks); construct it inside a seeded call chain"
                    ),
                )
            )
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
    return out


def _check_function(
    graph: ModuleGraph,
    resolver: OriginResolver,
    function: FunctionInfo,
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    # Only calls in this function's own scope (nested defs are visited
    # as their own FunctionInfo).
    nested_ids = {
        id(call)
        for stmt in function.node.body
        for node in ast.walk(stmt)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node is not function.node
        for call in ast.walk(node)
        if isinstance(call, ast.Call)
    }
    for call in _constructor_calls(graph, function.module, function.node):
        if id(call) in nested_ids:
            continue
        seed_expr = _seed_argument(call)
        if seed_expr is None:
            continue  # unseeded construction is D103's finding
        origins = resolver.origins(function, seed_expr)
        ambient = sorted(o.detail for o in origins if _is_ambient(o))
        if ambient:
            out.append(
                Diagnostic(
                    rule=rules.AMBIENT_SEED,
                    path=function.path,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        "generator seed traces to ambient source(s) "
                        f"{', '.join(ambient)}; derive it from a "
                        "SeedSequence/seeded_configs lineage instead"
                    ),
                )
            )
            continue
        has_lineage = any(_is_seed_lineage(o) for o in origins)
        literals = [o for o in origins if o.kind == "literal"]
        if has_lineage or not literals:
            continue
        # D104 owns the intra-function case.
        if function.param_names() & RNG_PARAM_NAMES:
            continue
        caller = resolver.callers_with_param(function, RNG_PARAM_NAMES)
        if caller is not None:
            out.append(
                Diagnostic(
                    rule=rules.LITERAL_RESEED,
                    path=function.path,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        "generator re-seeded from a literal inside a call "
                        f"chain that already carries a seed ({caller.key} "
                        "accepts one); thread the existing rng/seed down, "
                        "or hoist an intentional pinned seed to a named "
                        "module constant"
                    ),
                )
            )
    return out
