"""Observability-gating rules (O501/O502) for the hot modules.

The observability contract (see ``repro.obs``) is *zero overhead when
disabled*: with no :class:`~repro.obs.sink.Observer` attached, both
engines must execute exactly the code they executed before the
subsystem existed, so the differential matrix keeps certifying
bit-identical results.  The hot request loops therefore gate every
counter update and trace emission behind a cheap local check::

    if observing:                 # fast engine: one pre-bound bool
        rec_serves[serving] += 1
    if rec is not None:           # reference engine: one is-check
        rec.serves[serving] += 1

``O501`` pins that pattern statically.  Inside any ``for``/``while``
body of ``core/engine.py`` or ``core/fastpath.py``, a call or an
augmented assignment that touches a *sink-named* value — a name
matching ``obs | observer | observing | rec | recorder | trace |
tracer | sink``, bare or with a ``_suffix`` (``rec_serves``,
``trace_emit``) — must have an ancestor ``if`` whose test mentions a
sink name.  The test itself is exempt (``if trace_wants(i):`` *is* the
gate), as is any statement outside a loop, where a single ungated
touch costs one branch per run rather than one per request.

``O502`` extends the same contract to the sweep-scale sinks: inside the
hot loops of ``core/sweep.py`` and ``idicn/simnet.py``, touches of
span / progress / heartbeat sinks (``span``, ``spans``, ``tracker``,
``progress``, ``heartbeat``, ``reporter`` — plus the O501 vocabulary,
since sweeps also merge observer registries) must be gated the same
way (``if spans is not None:``, ``if progress:``).

False-positive escapes: name a variable outside the sink vocabulary,
or justify an inline ``# lint: disable=O501`` / ``disable=O502``.
"""

from __future__ import annotations

import ast
import re

from . import rules
from .diagnostics import Diagnostic, Rule

#: Vocabulary of observability sink names: bare or ``_suffix``-ed.
_SINK_NAME = re.compile(
    r"^(obs|observer|observing|rec|recorder|trace|tracer|sink)(_\w+)?$"
)

#: O502 vocabulary: the sweep-scale sinks plus the O501 set (a sweep
#: loop that merges worker registries touches ``observer`` too).
_SPAN_SINK_NAME = re.compile(
    r"^(obs|observer|observing|rec|recorder|trace|tracer|sink"
    r"|span|spans|tracker|progress|heartbeat|reporter)(_\w+)?$"
)

_O501_MESSAGE = (
    "observability sink touched in a hot loop without an "
    "enclosing sink-guard if (e.g. `if observing:`); ungated "
    "instrumentation taxes every run, observed or not"
)

_O502_MESSAGE = (
    "span/progress sink touched in a hot loop without an enclosing "
    "sink-guard if (e.g. `if spans is not None:`); ungated "
    "instrumentation taxes every sweep, observed or not"
)


def _mentions_sink(expr: ast.expr, matcher: re.Pattern[str]) -> bool:
    """Whether any plain name in the expression is sink-vocabulary."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and matcher.match(node.id):
            return True
        if isinstance(node, ast.Attribute) and matcher.match(node.attr):
            return True
    return False


def check_obsgate(
    hot_modules: list[tuple[str, ast.Module]],
) -> list[Diagnostic]:
    """Run O501 over the engine/fastpath module pair."""
    return _check_gating(
        hot_modules, _SINK_NAME, rules.OBS_UNGATED, _O501_MESSAGE
    )


def check_spangate(
    hot_modules: list[tuple[str, ast.Module]],
) -> list[Diagnostic]:
    """Run O502 over the sweep/scheduler module pair."""
    return _check_gating(
        hot_modules, _SPAN_SINK_NAME, rules.SPAN_UNGATED, _O502_MESSAGE
    )


def _check_gating(
    hot_modules: list[tuple[str, ast.Module]],
    matcher: re.Pattern[str],
    rule: Rule,
    message: str,
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for path, tree in hot_modules:
        loops = [
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.For, ast.While))
        ]
        # Seed only from outermost loops: nested loops are reached by
        # ``_scan`` itself with the guard state of their surroundings
        # (an outer ``if observing:`` covers an inner eviction while).
        nested: set[int] = set()
        for loop in loops:
            for child in ast.walk(loop):
                if child is not loop and isinstance(
                    child, (ast.For, ast.While)
                ):
                    nested.add(id(child))
        for loop in loops:
            if id(loop) in nested:
                continue
            for stmt in loop.body + loop.orelse:
                _scan(path, stmt, False, out, matcher, rule, message)
    return out


def _scan(
    path: str,
    stmt: ast.stmt,
    guarded: bool,
    out: list[Diagnostic],
    matcher: re.Pattern[str],
    rule: Rule,
    message: str,
) -> None:
    """Flag ungated sink touches in one statement of a hot-loop body.

    ``guarded`` is carried down once an ancestor ``if`` tested a sink
    name; nested loops restart from the current guard state (an outer
    ``if observing:`` covers an inner eviction ``while`` too).
    """
    if isinstance(stmt, ast.If):
        if _mentions_sink(stmt.test, matcher):
            # This *is* the gate: the test's own sink reads are the one
            # permitted per-iteration cost; everything below is covered.
            for child in stmt.body + stmt.orelse:
                _scan(path, child, True, out, matcher, rule, message)
            return
        _flag_expr(path, stmt.test, guarded, out, matcher, rule, message)
        for child in stmt.body + stmt.orelse:
            _scan(path, child, guarded, out, matcher, rule, message)
        return
    if isinstance(stmt, (ast.For, ast.While)):
        _flag_expr(
            path,
            stmt.iter if isinstance(stmt, ast.For) else stmt.test,
            guarded,
            out,
            matcher,
            rule,
            message,
        )
        for child in stmt.body + stmt.orelse:
            _scan(path, child, guarded, out, matcher, rule, message)
        return
    if isinstance(stmt, (ast.With,)):
        for item in stmt.items:
            _flag_expr(
                path, item.context_expr, guarded, out, matcher, rule, message
            )
        for child in stmt.body:
            _scan(path, child, guarded, out, matcher, rule, message)
        return
    if isinstance(stmt, ast.Try):
        for child in stmt.body + stmt.orelse + stmt.finalbody:
            _scan(path, child, guarded, out, matcher, rule, message)
        for handler in stmt.handlers:
            for child in handler.body:
                _scan(path, child, guarded, out, matcher, rule, message)
        return
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        # A def/class inside a hot loop is its own (pathological) cost;
        # its body executes elsewhere, so it is out of scope here.
        return
    # Leaf statements: expression statements, assignments, etc.
    for node in ast.walk(stmt):
        if isinstance(node, ast.AugAssign) and _mentions_sink(
            node.target, matcher
        ):
            if not guarded:
                out.append(_diagnostic(path, node, rule, message))
        elif isinstance(node, ast.Call) and _mentions_sink(
            node.func, matcher
        ):
            if not guarded:
                out.append(_diagnostic(path, node, rule, message))


def _flag_expr(
    path: str,
    expr: ast.expr,
    guarded: bool,
    out: list[Diagnostic],
    matcher: re.Pattern[str],
    rule: Rule,
    message: str,
) -> None:
    """Flag ungated sink *calls* inside a non-gate expression."""
    if guarded:
        return
    for node in ast.walk(expr):
        if isinstance(node, ast.Call) and _mentions_sink(node.func, matcher):
            out.append(_diagnostic(path, node, rule, message))


def _diagnostic(
    path: str, node: ast.AST, rule: Rule, message: str
) -> Diagnostic:
    return Diagnostic(
        rule=rule,
        path=path,
        line=node.lineno,
        col=node.col_offset,
        message=message,
    )
