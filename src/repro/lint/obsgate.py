"""Observability-gating rule (O501) for the engine hot modules.

The observability contract (see ``repro.obs``) is *zero overhead when
disabled*: with no :class:`~repro.obs.sink.Observer` attached, both
engines must execute exactly the code they executed before the
subsystem existed, so the differential matrix keeps certifying
bit-identical results.  The hot request loops therefore gate every
counter update and trace emission behind a cheap local check::

    if observing:                 # fast engine: one pre-bound bool
        rec_serves[serving] += 1
    if rec is not None:           # reference engine: one is-check
        rec.serves[serving] += 1

``O501`` pins that pattern statically.  Inside any ``for``/``while``
body of ``core/engine.py`` or ``core/fastpath.py``, a call or an
augmented assignment that touches a *sink-named* value — a name
matching ``obs | observer | observing | rec | recorder | trace |
tracer | sink``, bare or with a ``_suffix`` (``rec_serves``,
``trace_emit``) — must have an ancestor ``if`` whose test mentions a
sink name.  The test itself is exempt (``if trace_wants(i):`` *is* the
gate), as is any statement outside a loop, where a single ungated
touch costs one branch per run rather than one per request.

False-positive escapes: name a variable outside the sink vocabulary,
or justify an inline ``# lint: disable=O501``.
"""

from __future__ import annotations

import ast
import re

from . import rules
from .diagnostics import Diagnostic

#: Vocabulary of observability sink names: bare or ``_suffix``-ed.
_SINK_NAME = re.compile(
    r"^(obs|observer|observing|rec|recorder|trace|tracer|sink)(_\w+)?$"
)


def _is_sink_name(name: str) -> bool:
    return _SINK_NAME.match(name) is not None


def _mentions_sink(expr: ast.expr) -> bool:
    """Whether any plain name in the expression is sink-vocabulary."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and _is_sink_name(node.id):
            return True
        if isinstance(node, ast.Attribute) and _is_sink_name(node.attr):
            return True
    return False


def check_obsgate(
    hot_modules: list[tuple[str, ast.Module]],
) -> list[Diagnostic]:
    """Run O501 over the engine/fastpath module pair."""
    out: list[Diagnostic] = []
    for path, tree in hot_modules:
        loops = [
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.For, ast.While))
        ]
        # Seed only from outermost loops: nested loops are reached by
        # ``_scan`` itself with the guard state of their surroundings
        # (an outer ``if observing:`` covers an inner eviction while).
        nested: set[int] = set()
        for loop in loops:
            for child in ast.walk(loop):
                if child is not loop and isinstance(
                    child, (ast.For, ast.While)
                ):
                    nested.add(id(child))
        for loop in loops:
            if id(loop) in nested:
                continue
            for stmt in loop.body + loop.orelse:
                _scan(path, stmt, guarded=False, out=out)
    return out


def _scan(
    path: str, stmt: ast.stmt, guarded: bool, out: list[Diagnostic]
) -> None:
    """Flag ungated sink touches in one statement of a hot-loop body.

    ``guarded`` is carried down once an ancestor ``if`` tested a sink
    name; nested loops restart from the current guard state (an outer
    ``if observing:`` covers an inner eviction ``while`` too).
    """
    if isinstance(stmt, ast.If):
        if _mentions_sink(stmt.test):
            # This *is* the gate: the test's own sink reads are the one
            # permitted per-iteration cost; everything below is covered.
            for child in stmt.body + stmt.orelse:
                _scan(path, child, guarded=True, out=out)
            return
        _flag_expr(path, stmt.test, guarded, out)
        for child in stmt.body + stmt.orelse:
            _scan(path, child, guarded, out)
        return
    if isinstance(stmt, (ast.For, ast.While)):
        _flag_expr(
            path,
            stmt.iter if isinstance(stmt, ast.For) else stmt.test,
            guarded,
            out,
        )
        for child in stmt.body + stmt.orelse:
            _scan(path, child, guarded, out)
        return
    if isinstance(stmt, (ast.With,)):
        for item in stmt.items:
            _flag_expr(path, item.context_expr, guarded, out)
        for child in stmt.body:
            _scan(path, child, guarded, out)
        return
    if isinstance(stmt, ast.Try):
        for child in stmt.body + stmt.orelse + stmt.finalbody:
            _scan(path, child, guarded, out)
        for handler in stmt.handlers:
            for child in handler.body:
                _scan(path, child, guarded, out)
        return
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        # A def/class inside a hot loop is its own (pathological) cost;
        # its body executes elsewhere, so it is out of scope here.
        return
    # Leaf statements: expression statements, assignments, etc.
    for node in ast.walk(stmt):
        if isinstance(node, ast.AugAssign) and _mentions_sink(node.target):
            if not guarded:
                out.append(_diagnostic(path, node))
        elif isinstance(node, ast.Call) and _mentions_sink(node.func):
            if not guarded:
                out.append(_diagnostic(path, node))


def _flag_expr(
    path: str, expr: ast.expr, guarded: bool, out: list[Diagnostic]
) -> None:
    """Flag ungated sink *calls* inside a non-gate expression."""
    if guarded:
        return
    for node in ast.walk(expr):
        if isinstance(node, ast.Call) and _mentions_sink(node.func):
            out.append(_diagnostic(path, node))


def _diagnostic(path: str, node: ast.AST) -> Diagnostic:
    return Diagnostic(
        rule=rules.OBS_UNGATED,
        path=path,
        line=node.lineno,
        col=node.col_offset,
        message=(
            "observability sink touched in a hot loop without an "
            "enclosing sink-guard if (e.g. `if observing:`); ungated "
            "instrumentation taxes every run, observed or not"
        ),
    )
