"""Figure-data assembly helpers shared by benchmarks and examples.

Each helper returns plain dict/array data (no plotting — the repository
is headless); benchmarks render the data with
:mod:`repro.analysis.tables`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from ..core.architectures import Architecture
from ..core.metrics import METRIC_NAMES, Improvements


@dataclass(frozen=True)
class GapSweep:
    """One sensitivity sweep: gap(ICN-NR, EDGE) per metric vs a parameter."""

    parameter: str
    values: tuple[float, ...]
    gaps: dict[str, tuple[float, ...]]


def improvement_rows(
    improvements: dict[str, Improvements], metric: str
) -> list[tuple[str, float]]:
    """(architecture, improvement%) rows for one metric, legend order."""
    if metric not in METRIC_NAMES:
        raise ValueError(f"unknown metric {metric!r}; choose from {METRIC_NAMES}")
    return [
        (name, getattr(imp, metric)) for name, imp in improvements.items()
    ]


def sweep_gap(
    parameter: str,
    values: Iterable[float],
    make_config: "callable",
    arch_a: Architecture,
    arch_b: Architecture,
    engine: str = "reference",
    workers: int = 0,
) -> GapSweep:
    """Run (arch_a, arch_b) across configs and collect per-metric gaps.

    ``make_config(value)`` must return the :class:`ExperimentConfig` for
    one sweep point; the gap is ``RelImprov(a) - RelImprov(b)``.  The
    points go through :func:`repro.core.run_sweep`, so ``workers`` > 1
    fans them out over processes and a failing point raises instead of
    leaving a hole in the series.
    """
    from ..core.sweep import SweepPoint, run_sweep

    values = tuple(values)
    points = [
        SweepPoint(
            key=f"{parameter}={value!r}",
            config=make_config(value),
            architectures=(arch_a, arch_b),
        )
        for value in values
    ]
    outcome = run_sweep(points, workers=workers, engine=engine)
    outcome.raise_on_failure()
    per_metric: dict[str, list[float]] = {m: [] for m in METRIC_NAMES}
    for point in points:
        gap = outcome.results[point.key].gap(arch_a.name, arch_b.name)
        for metric in METRIC_NAMES:
            per_metric[metric].append(getattr(gap, metric))
    return GapSweep(
        parameter=parameter,
        values=values,
        gaps={m: tuple(v) for m, v in per_metric.items()},
    )


def loglog_popularity(counts: Sequence[int], points: int = 30) -> np.ndarray:
    """Down-sample a rank-frequency curve to log-spaced points.

    Returns an (n, 2) array of (rank, count) pairs suitable for a
    log-log plot (Figure 1's visual check).
    """
    counts = np.asarray(counts)
    if counts.size == 0:
        return np.zeros((0, 2))
    ranks = np.unique(
        np.logspace(0, np.log10(counts.size), num=points).astype(np.int64)
    )
    ranks = ranks[ranks <= counts.size]
    return np.column_stack([ranks, counts[ranks - 1]])
