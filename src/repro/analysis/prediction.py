"""Analytical prediction of EDGE's cache performance.

Combines the per-PoP arrival model of Section 4.1 with Che's LRU
approximation (:mod:`repro.analysis.che`) to predict the aggregate edge
hit ratio without simulating: every leaf of PoP ``p`` receives an
i.i.d. Zipf stream, so its steady-state hit ratio depends only on its
budget, and the network-wide ratio is the population-weighted average.
The tests validate the prediction against the simulator — a useful
sanity check that the engine implements the model it claims to.
"""

from __future__ import annotations

import numpy as np

from ..cache.budget import node_budgets
from ..topology.network import Network
from ..workload.zipf import ZipfDistribution
from .che import hit_ratio


def predict_edge_hit_ratio(
    network: Network,
    num_objects: int,
    alpha: float,
    budget_fraction: float,
    budget_split: str = "proportional",
    budget_multiplier: float = 1.0,
) -> float:
    """Steady-state aggregate hit ratio of the EDGE architecture.

    Assumes the paper's baseline workload model: requests arrive at PoPs
    proportionally to population, uniformly across each PoP's leaves,
    i.i.d. Zipf(``alpha``) over ``num_objects`` objects, with leaf
    budgets from the given provisioning policy (optionally scaled, e.g.
    by EDGE-Norm's normalization factor).
    """
    zipf = ZipfDistribution(alpha, num_objects)
    probabilities = zipf.probabilities
    budgets = node_budgets(network, budget_fraction, num_objects,
                           budget_split)
    weights = network.pop_topology.population_weights()
    first_leaf = network.tree.leaves.start
    total = 0.0
    for pop in range(network.num_pops):
        leaf_budget = budgets[network.gid(pop, first_leaf)]
        total += weights[pop] * hit_ratio(
            probabilities, leaf_budget * budget_multiplier
        )
    return total


def predict_edge_origin_load_reduction(
    network: Network,
    num_objects: int,
    alpha: float,
    budget_fraction: float,
    budget_split: str = "proportional",
) -> float:
    """Predicted percentage reduction in *total* origin load for EDGE.

    Every request not served by a leaf cache reaches its origin, so the
    total origin-load reduction equals the aggregate hit ratio.  (The
    paper's figure metric uses the *max*-loaded origin, which this
    simple model brackets rather than matches.)
    """
    return 100.0 * predict_edge_hit_ratio(
        network, num_objects, alpha, budget_fraction, budget_split
    )
