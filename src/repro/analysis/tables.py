"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows/series the paper reports;
this module does the formatting so every bench emits consistent,
greppable tables.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render an aligned monospace table."""
    rendered_rows = [
        [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """Render figure-style data: one x column plus one column per series."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x, *(values[i] for values in series.values())])
    return format_table(headers, rows, title=title)
