"""Analysis helpers: table rendering and figure-data assembly."""

from .che import characteristic_time, hit_ratio, per_object_hit_ratios
from .figures import GapSweep, improvement_rows, loglog_popularity, sweep_gap
from .prediction import (
    predict_edge_hit_ratio,
    predict_edge_origin_load_reduction,
)
from .tables import format_series, format_table

__all__ = [
    "GapSweep",
    "characteristic_time",
    "hit_ratio",
    "per_object_hit_ratios",
    "format_series",
    "format_table",
    "improvement_rows",
    "loglog_popularity",
    "predict_edge_hit_ratio",
    "predict_edge_origin_load_reduction",
    "sweep_gap",
]
