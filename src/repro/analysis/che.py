"""Che's approximation for LRU hit ratios.

An analytical cross-check for the simulator: for an LRU cache of ``B``
objects receiving i.i.d. requests with probabilities ``p_i``, Che's
approximation says object ``i`` hits with probability

    h_i = 1 - exp(-p_i * T)

where the *characteristic time* ``T`` solves

    sum_i (1 - exp(-p_i * T)) = B.

The aggregate hit ratio is ``sum_i p_i * h_i``.  Tests validate the
simulator's single-cache behaviour against this formula; it is also
how the calibration notes in DESIGN.md were derived.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize


def characteristic_time(probabilities: np.ndarray, cache_size: float) -> float:
    """Solve Che's fixed point for the characteristic time ``T``.

    ``T`` is measured in requests.  Returns ``inf`` when the cache can
    hold the whole catalog (nothing is ever evicted).
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if cache_size <= 0:
        return 0.0
    if cache_size >= len(probabilities):
        return float("inf")

    def occupancy(t: float) -> float:
        return float(np.sum(-np.expm1(-probabilities * t)) - cache_size)

    # The occupancy is increasing in t; bracket then bisect.
    upper = 1.0
    while occupancy(upper) < 0:
        upper *= 2.0
        if upper > 1e18:
            return float("inf")
    return float(optimize.brentq(occupancy, 0.0, upper))


def hit_ratio(probabilities: np.ndarray, cache_size: float) -> float:
    """Aggregate steady-state LRU hit ratio under Che's approximation."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    t = characteristic_time(probabilities, cache_size)
    if t == 0.0:
        return 0.0
    if np.isinf(t):
        return 1.0
    per_object = -np.expm1(-probabilities * t)
    return float(np.dot(probabilities, per_object))


def per_object_hit_ratios(
    probabilities: np.ndarray, cache_size: float
) -> np.ndarray:
    """Per-object steady-state hit probabilities."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    t = characteristic_time(probabilities, cache_size)
    if t == 0.0:
        return np.zeros_like(probabilities)
    if np.isinf(t):
        return np.ones_like(probabilities)
    return -np.expm1(-probabilities * t)
