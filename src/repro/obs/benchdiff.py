"""Bench regression gate: compare two ``BENCH_*.json`` reports.

``python -m repro.obs bench-diff baseline.json current.json --fail-over
10`` walks both reports, pairs up the performance metrics, and fails
(exit status 1) when any metric regressed by more than the threshold.
Direction is metric-aware:

* throughput metrics (``*_requests_per_second``, ``speedup``) are
  *higher-better* — a regression is the current value dropping below
  the baseline;
* wall-clock metrics (``*_seconds``, every ``phase_seconds`` entry) are
  *lower-better* — a regression is the current value rising above the
  baseline.

Reports taken at different ``scale`` values measure different work, so
comparing them is an error (exit status 2) unless explicitly allowed.
Tiny wall-clock phases are dominated by scheduler noise; phases below
``--min-seconds`` in *both* reports are reported but never gated on.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

#: Direction tags for paired metrics.
HIGHER_BETTER = "higher-better"
LOWER_BETTER = "lower-better"

#: Wall-clock phases shorter than this (seconds) in both reports are
#: never gated on — at that magnitude the numbers are scheduler noise.
DEFAULT_MIN_SECONDS = 0.05


@dataclass(frozen=True)
class MetricDelta:
    """One paired metric across baseline and current reports."""

    name: str
    direction: str
    baseline: float
    current: float
    gated: bool

    @property
    def change_pct(self) -> float:
        """Signed change where positive always means *worse*."""
        if self.baseline == 0:
            return 0.0 if self.current == 0 else math.inf
        raw = (self.current - self.baseline) / self.baseline * 100.0
        return -raw if self.direction == HIGHER_BETTER else raw

    def regressed(self, fail_over_pct: float) -> bool:
        return self.gated and self.change_pct > fail_over_pct


def _metric_direction(name: str) -> str | None:
    """Classify one leaf key, or None if it is not a perf metric."""
    if name.endswith("_requests_per_second") or name == "speedup" \
            or name.endswith("_speedup"):
        return HIGHER_BETTER
    if name.endswith("_seconds"):
        return LOWER_BETTER
    return None


def collect_metrics(report: Mapping[str, object]) -> dict[str, str]:
    """Flatten a bench report into ``path -> direction`` perf metrics.

    Walks nested dicts with ``/``-joined paths.  Every entry under a
    ``phase_seconds`` section is wall-clock regardless of its key.
    """
    metrics: dict[str, str] = {}

    def walk(node: Mapping[str, object], prefix: str, in_phases: bool):
        for key in sorted(node):
            value = node[key]
            path = f"{prefix}/{key}" if prefix else key
            if isinstance(value, Mapping):
                walk(value, path, in_phases or key == "phase_seconds")
                continue
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            direction = LOWER_BETTER if in_phases else _metric_direction(key)
            if direction is not None:
                metrics[path] = direction

    walk(report, "", False)
    return metrics


def diff_reports(
    baseline: Mapping[str, object],
    current: Mapping[str, object],
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> list[MetricDelta]:
    """Pair up the perf metrics both reports share, in path order."""
    base_metrics = collect_metrics(baseline)
    curr_metrics = collect_metrics(current)
    deltas: list[MetricDelta] = []
    for path in sorted(set(base_metrics) & set(curr_metrics)):
        direction = base_metrics[path]
        if direction != curr_metrics[path]:
            continue
        base_value = float(_lookup(baseline, path))
        curr_value = float(_lookup(current, path))
        gated = True
        if direction == LOWER_BETTER and max(
            base_value, curr_value
        ) < min_seconds:
            gated = False
        deltas.append(
            MetricDelta(path, direction, base_value, curr_value, gated)
        )
    return deltas


def _lookup(report: Mapping[str, object], path: str) -> object:
    node: object = report
    for segment in path.split("/"):
        assert isinstance(node, Mapping)
        node = node[segment]
    return node


def load_report(path: str | Path) -> dict[str, object]:
    """Load one bench report, insisting it is a JSON object."""
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    if not isinstance(report, dict):
        raise ValueError(f"{path}: bench report is not a JSON object")
    return report


def format_deltas(deltas: list[MetricDelta], fail_over_pct: float) -> str:
    """Human-readable table of every paired metric, worst first."""
    lines = []
    ordered = sorted(
        deltas, key=lambda d: (-d.change_pct if d.gated else math.inf)
    )
    for delta in ordered:
        change = delta.change_pct
        if math.isinf(change):
            shown = "+inf%"
        else:
            shown = f"{change:+.1f}%"
        marker = "REGRESSED" if delta.regressed(fail_over_pct) else (
            "ok" if delta.gated else "skipped (below noise floor)"
        )
        lines.append(
            f"  {delta.name}: {delta.baseline:g} -> {delta.current:g} "
            f"({shown} worse, {delta.direction}) [{marker}]"
        )
    return "\n".join(lines)


def run_bench_diff(
    baseline_path: str | Path,
    current_path: str | Path,
    fail_over_pct: float,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    allow_scale_mismatch: bool = False,
    out=print,
) -> int:
    """The ``bench-diff`` CLI body; returns the process exit status."""
    baseline = load_report(baseline_path)
    current = load_report(current_path)
    base_scale = baseline.get("scale")
    curr_scale = current.get("scale")
    if base_scale != curr_scale and not allow_scale_mismatch:
        out(
            f"bench-diff: scale mismatch (baseline {base_scale!r}, "
            f"current {curr_scale!r}); rerun at the baseline scale or "
            "pass --allow-scale-mismatch"
        )
        return 2
    deltas = diff_reports(baseline, current, min_seconds=min_seconds)
    if not deltas:
        out("bench-diff: no comparable perf metrics in common")
        return 2
    regressions = [d for d in deltas if d.regressed(fail_over_pct)]
    out(
        f"bench-diff: {len(deltas)} paired metrics, threshold "
        f"{fail_over_pct:g}%"
    )
    out(format_deltas(deltas, fail_over_pct))
    if regressions:
        out(
            f"bench-diff: FAIL — {len(regressions)} metric(s) regressed "
            f"beyond {fail_over_pct:g}%"
        )
        return 1
    out("bench-diff: OK — no regression beyond threshold")
    return 0
