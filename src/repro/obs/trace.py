"""Sampled per-request trace records (reproducible JSONL).

A trace answers the question the aggregate :class:`SimulationResult`
cannot: *which* node served request ``i``, over which hop cost, and
whether a failure was routed around on the way.  Records are one JSON
object per line with a versioned field set (see :data:`TRACE_VERSION`
and :mod:`repro.obs.schema`):

* a ``header`` record opens every run — architecture, routing mode,
  request count, warmup boundary, and the sampler's ``(seed, rate)``;
* each sampled request emits a ``request`` record — request index,
  arrival PoP/leaf, object id, serving node, serving origin PoP (null
  for cache hits), hop cost, object size, and the cooperation /
  failure-fallback annotations.

Sampling is *content-addressed*, not stream-addressed: the decision
for request ``i`` is a pure function of ``(seed, i)`` (SHA-256 mapped
to [0, 1)), so both simulation engines — which interleave work very
differently — sample exactly the same requests, and repeated seeded
runs produce byte-identical trace files.  Serialization is canonical
(sorted keys, compact separators) for the same reason.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import IO

#: Trace schema version; bump on any breaking field change.
TRACE_VERSION = 1

_HASH_DENOMINATOR = float(2**64)


class TraceSampler:
    """Deterministic per-request sampling decisions.

    ``rate`` is the fraction of requests traced; ``seed`` keys the
    hash so different seeds select different (but each reproducible)
    subsets.  ``wants(i)`` is branch-cheap at the extremes: rate 1.0
    always samples and rate 0.0 never does, without hashing.
    """

    __slots__ = ("rate", "seed", "_always", "_never", "_prefix")

    def __init__(self, rate: float = 1.0, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.seed = seed
        self._always = rate >= 1.0
        self._never = rate <= 0.0
        self._prefix = f"{seed}:".encode()

    def wants(self, index: int) -> bool:
        """Whether request ``index`` is in the sampled subset."""
        if self._always:
            return True
        if self._never:
            return False
        digest = hashlib.sha256(self._prefix + str(index).encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / _HASH_DENOMINATOR
        return draw < self.rate


class TraceWriter:
    """Writes schema-versioned trace records as JSONL.

    Construct with a path (opened lazily on first write) or any
    writable text file object.  One writer may hold several runs, each
    opened by :meth:`write_header`; ``emitted``/``headers`` count what
    was written.  Use as a context manager or call :meth:`close`.
    """

    def __init__(
        self,
        destination: str | Path | IO[str],
        sampler: TraceSampler | None = None,
    ) -> None:
        self.sampler = sampler if sampler is not None else TraceSampler()
        self._path: Path | None = None
        self._fh: IO[str] | None = None
        if isinstance(destination, (str, Path)):
            self._path = Path(destination)
        else:
            self._fh = destination
        self.emitted = 0
        self.headers = 0

    # The engines read this bound method into a local for the hot loop.
    def wants(self, index: int) -> bool:
        """Delegate to the sampler (hot-loop entry point)."""
        return self.sampler.wants(index)

    def _file(self) -> IO[str]:
        if self._fh is None:
            assert self._path is not None
            self._fh = open(self._path, "w", encoding="utf-8")
        return self._fh

    def _write(self, record: dict[str, object]) -> None:
        self._file().write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )

    def write_header(
        self,
        architecture: str,
        routing: str,
        num_requests: int,
        first_measured: int,
    ) -> None:
        """Open one run: write the run-description header record."""
        self._write(
            {
                "v": TRACE_VERSION,
                "kind": "header",
                "architecture": architecture,
                "routing": routing,
                "requests": num_requests,
                "first_measured": first_measured,
                "sample_rate": self.sampler.rate,
                "sample_seed": self.sampler.seed,
            }
        )
        self.headers += 1

    def emit_request(
        self,
        index: int,
        pop: int,
        leaf: int,
        obj: int,
        serving: int,
        origin_pop: int | None,
        cost: float,
        size: float,
        coop: bool,
        fallback: bool,
    ) -> None:
        """Write one sampled request record.

        ``origin_pop`` is the serving origin (None for cache hits);
        ``cost`` is the hop-cost latency charged to the request.  The
        caller is responsible for the sampling decision (``wants``).
        """
        self._write(
            {
                "v": TRACE_VERSION,
                "kind": "request",
                "i": index,
                "pop": pop,
                "leaf": leaf,
                "object": obj,
                "serving": serving,
                "origin": origin_pop,
                "cost": float(cost),
                "size": float(size),
                "coop": bool(coop),
                "fallback": bool(fallback),
            }
        )
        self.emitted += 1

    def flush(self) -> None:
        """Flush the underlying file (no-op before the first write)."""
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        """Close the file if this writer opened it."""
        if self._fh is not None:
            self._fh.flush()
            if self._path is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
