"""The ``python -m repro.obs`` command-line interface.

Five subcommands:

``report``
    Render a registry snapshot (``registry.json``) as a human-readable
    table, optionally summarizing a trace JSONL alongside it.  Pass a
    snapshot file or a directory containing ``registry.json`` /
    ``trace.jsonl`` (the layout ``smoke`` writes).

``smoke``
    Run a small fully-traced experiment (sample rate 1.0 by default)
    and write the three export artifacts — ``registry.json``,
    ``metrics.prom``, ``trace.jsonl`` — into ``--out``.  This is what
    the CI observability job runs before validating the exports with
    ``tests/obs/check_exports.py``.

``sweep-smoke``
    Run a small observed parallel sweep and write the sweep-scale
    artifacts — merged ``registry.json`` (plus the wall-clock-stripped
    ``registry.deterministic.json``), merged ``spans.jsonl``, and the
    final ``heartbeat.json`` — into ``--out``, validating each.  The
    CI ``obs-progress`` job runs this.

``watch``
    Render a live sweep's heartbeat file; ``--follow`` repaints until
    the run finishes.

``bench-diff``
    Compare two ``BENCH_*.json`` reports and exit non-zero when any
    throughput or phase-seconds metric regressed beyond
    ``--fail-over`` percent (the CI bench gate).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Sequence

from .benchdiff import DEFAULT_MIN_SECONDS, run_bench_diff
from .progress import ProgressReporter, read_heartbeat, render_heartbeat
from .registry import MetricsRegistry
from .schema import (
    validate_heartbeat,
    validate_prometheus_text,
    validate_registry_snapshot,
    validate_span_file,
    validate_trace_file,
)
from .sink import Observer
from .spans import SpanTracker
from .trace import TraceSampler, TraceWriter


def _load_snapshot(path: Path) -> dict[str, object]:
    with open(path, encoding="utf-8") as fh:
        snapshot = json.load(fh)
    validate_registry_snapshot(snapshot)
    return snapshot


def render_snapshot(snapshot: dict[str, object]) -> str:
    """A plain-text table of every family and sample in a snapshot."""
    lines: list[str] = []
    metrics = snapshot["metrics"]
    assert isinstance(metrics, list)
    for family in metrics:
        lines.append(f"{family['name']} ({family['type']})")
        if family.get("help"):
            lines.append(f"  # {family['help']}")
        for sample in family["samples"]:
            labels = ",".join(
                f"{k}={v}" for k, v in sorted(sample["labels"].items())
            )
            prefix = f"  {{{labels}}}" if labels else "  (no labels)"
            if family["type"] == "histogram":
                lines.append(
                    f"{prefix} count={sample['count']} sum={sample['sum']}"
                )
            else:
                lines.append(f"{prefix} {sample['value']}")
    if not lines:
        lines.append("(empty registry)")
    return "\n".join(lines)


def _cmd_report(args: argparse.Namespace) -> int:
    target = Path(args.path)
    snapshot_path = target
    trace_path: Path | None = None
    if target.is_dir():
        snapshot_path = target / "registry.json"
        candidate = target / "trace.jsonl"
        if candidate.exists():
            trace_path = candidate
    snapshot = _load_snapshot(snapshot_path)
    print(render_snapshot(snapshot))
    if trace_path is not None:
        stats = validate_trace_file(trace_path)
        print(
            f"\ntrace: {stats.headers} run(s), "
            f"{stats.requests} sampled request record(s)"
        )
    return 0


def run_smoke(
    out_dir: Path,
    num_requests: int = 5_000,
    num_objects: int = 200,
    seed: int = 2013,
    sample_rate: float = 1.0,
    sample_seed: int = 0,
    engine: str = "reference",
) -> dict[str, Path]:
    """Run a tiny traced experiment; write and validate all exports.

    Returns the paths of the written artifacts.  Import of the core
    package happens here (not at module import) so the obs package
    stays usable standalone.
    """
    from ..core.architectures import BASELINE_ARCHITECTURES
    from ..core.experiment import ExperimentConfig, run_experiment

    out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = out_dir / "trace.jsonl"
    registry_path = out_dir / "registry.json"
    prom_path = out_dir / "metrics.prom"

    registry = MetricsRegistry()
    sampler = TraceSampler(rate=sample_rate, seed=sample_seed)
    with TraceWriter(trace_path, sampler=sampler) as tracer:
        observer = Observer(registry=registry, tracer=tracer)
        config = ExperimentConfig(
            tree_depth=3,
            num_objects=num_objects,
            num_requests=num_requests,
            seed=seed,
        )
        run_experiment(
            config,
            BASELINE_ARCHITECTURES,
            engine=engine,
            observer=observer,
        )

    registry_path.write_text(registry.to_json() + "\n", encoding="utf-8")
    prom_text = registry.to_prometheus()
    prom_path.write_text(prom_text, encoding="utf-8")

    validate_registry_snapshot(registry.snapshot())
    validate_prometheus_text(prom_text)
    validate_trace_file(trace_path)
    return {
        "registry": registry_path,
        "prometheus": prom_path,
        "trace": trace_path,
    }


def _cmd_smoke(args: argparse.Namespace) -> int:
    paths = run_smoke(
        Path(args.out),
        num_requests=args.requests,
        num_objects=args.objects,
        seed=args.seed,
        sample_rate=args.sample_rate,
        sample_seed=args.sample_seed,
        engine=args.engine,
    )
    stats = validate_trace_file(paths["trace"])
    print(
        f"smoke run ok: {stats.headers} run(s), "
        f"{stats.requests} trace record(s)"
    )
    for kind, path in sorted(paths.items()):
        print(f"  {kind}: {path}")
    return 0


def run_sweep_smoke(
    out_dir: Path,
    num_points: int = 6,
    num_requests: int = 2_000,
    num_objects: int = 100,
    seed: int = 2013,
    workers: int = 2,
    chunk_size: int | None = None,
    engine: str = "fast",
) -> dict[str, Path]:
    """Run a small observed sweep; write and validate all artifacts.

    The grid varies the Zipf ``alpha`` across ``num_points`` small
    configurations re-seeded with :func:`repro.core.sweep.seeded_configs`.
    Artifacts: the merged ``registry.json``, its wall-clock-stripped
    twin ``registry.deterministic.json`` (byte-identical across reruns
    and worker counts for a fixed chunk size), the merged canonical
    ``spans.jsonl``, and the final ``heartbeat.json``.
    """
    from ..core.experiment import ExperimentConfig
    from ..core.sweep import (
        SweepPoint,
        deterministic_snapshot,
        run_sweep,
        seeded_configs,
    )

    out_dir.mkdir(parents=True, exist_ok=True)
    registry_path = out_dir / "registry.json"
    deterministic_path = out_dir / "registry.deterministic.json"
    spans_path = out_dir / "spans.jsonl"
    heartbeat_path = out_dir / "heartbeat.json"

    configs = seeded_configs(
        seed,
        (
            ExperimentConfig(
                tree_depth=3,
                num_objects=num_objects,
                num_requests=num_requests,
                alpha=round(0.4 + 0.1 * index, 2),
            )
            for index in range(num_points)
        ),
    )
    points = [
        SweepPoint(key=f"alpha-{config.alpha:.2f}", config=config)
        for config in configs
    ]

    registry = MetricsRegistry()
    observer = Observer(registry=registry)
    tracker = SpanTracker(seed)
    run_span = tracker.open("sweep-smoke", "run", seed=seed, engine=engine)
    progress = ProgressReporter(heartbeat_path)
    outcome = run_sweep(
        points,
        workers=workers,
        engine=engine,
        chunk_size=chunk_size,
        observer=observer,
        progress=progress,
        spans=tracker,
    )
    tracker.close(run_span)
    outcome.raise_on_failure()

    registry_path.write_text(registry.to_json() + "\n", encoding="utf-8")
    deterministic_path.write_text(
        json.dumps(
            deterministic_snapshot(registry),
            sort_keys=True,
            separators=(",", ":"),
        )
        + "\n",
        encoding="utf-8",
    )
    tracker.write(spans_path)

    validate_registry_snapshot(registry.snapshot())
    validate_span_file(spans_path)
    validate_heartbeat(read_heartbeat(heartbeat_path))
    return {
        "registry": registry_path,
        "registry_deterministic": deterministic_path,
        "spans": spans_path,
        "heartbeat": heartbeat_path,
    }


def _cmd_sweep_smoke(args: argparse.Namespace) -> int:
    paths = run_sweep_smoke(
        Path(args.out),
        num_points=args.points,
        num_requests=args.requests,
        num_objects=args.objects,
        seed=args.seed,
        workers=args.workers,
        chunk_size=args.chunk_size,
        engine=args.engine,
    )
    stats = validate_span_file(paths["spans"])
    heartbeat = read_heartbeat(paths["heartbeat"])
    print(
        f"sweep smoke ok: {heartbeat['done']}/{heartbeat['total']} points, "
        f"{stats.spans} span record(s)"
    )
    for kind, path in sorted(paths.items()):
        print(f"  {kind}: {path}")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    path = Path(args.path)
    while True:
        if path.exists():
            payload = read_heartbeat(path)
            print(render_heartbeat(payload))
            finished = (
                payload["done"] + payload["failed"] >= payload["total"]
                and payload["total"] > 0
            )
            if not args.follow or finished:
                return 0
        elif not args.follow:
            print(f"no heartbeat at {path}", file=sys.stderr)
            return 1
        else:
            print(f"waiting for {path} ...")
        time.sleep(args.interval)


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    return run_bench_diff(
        Path(args.baseline),
        Path(args.current),
        fail_over_pct=args.fail_over,
        min_seconds=args.min_seconds,
        allow_scale_mismatch=args.allow_scale_mismatch,
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.obs`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability exports: render reports, run smoke runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="render a registry snapshot (file or smoke out dir)"
    )
    report.add_argument("path", help="registry.json or a directory with it")
    report.set_defaults(func=_cmd_report)

    smoke = sub.add_parser(
        "smoke", help="run a small traced experiment and write exports"
    )
    smoke.add_argument("--out", required=True, help="output directory")
    smoke.add_argument("--requests", type=int, default=5_000)
    smoke.add_argument("--objects", type=int, default=200)
    smoke.add_argument("--seed", type=int, default=2013)
    smoke.add_argument("--sample-rate", type=float, default=1.0)
    smoke.add_argument("--sample-seed", type=int, default=0)
    smoke.add_argument(
        "--engine", choices=("reference", "fast"), default="reference"
    )
    smoke.set_defaults(func=_cmd_smoke)

    sweep_smoke = sub.add_parser(
        "sweep-smoke",
        help="run a small observed sweep and write sweep artifacts",
    )
    sweep_smoke.add_argument("--out", required=True, help="output directory")
    sweep_smoke.add_argument("--points", type=int, default=6)
    sweep_smoke.add_argument("--requests", type=int, default=2_000)
    sweep_smoke.add_argument("--objects", type=int, default=100)
    sweep_smoke.add_argument("--seed", type=int, default=2013)
    sweep_smoke.add_argument("--workers", type=int, default=2)
    sweep_smoke.add_argument("--chunk-size", type=int, default=None)
    sweep_smoke.add_argument(
        "--engine", choices=("reference", "fast"), default="fast"
    )
    sweep_smoke.set_defaults(func=_cmd_sweep_smoke)

    watch = sub.add_parser(
        "watch", help="render a sweep heartbeat file (live progress)"
    )
    watch.add_argument("path", help="heartbeat.json written by a sweep")
    watch.add_argument(
        "--follow", action="store_true",
        help="repaint until the run finishes",
    )
    watch.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between repaints with --follow",
    )
    watch.set_defaults(func=_cmd_watch)

    bench_diff = sub.add_parser(
        "bench-diff",
        help="compare two bench reports; non-zero exit on regression",
    )
    bench_diff.add_argument("baseline", help="baseline BENCH_*.json")
    bench_diff.add_argument("current", help="current BENCH_*.json")
    bench_diff.add_argument(
        "--fail-over", type=float, default=10.0,
        help="regression threshold in percent (default 10)",
    )
    bench_diff.add_argument(
        "--min-seconds", type=float, default=DEFAULT_MIN_SECONDS,
        help="noise floor: wall-clock phases under this many seconds "
        "in both reports are reported but not gated",
    )
    bench_diff.add_argument(
        "--allow-scale-mismatch", action="store_true",
        help="compare reports recorded at different scales",
    )
    bench_diff.set_defaults(func=_cmd_bench_diff)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    result = args.func(args)
    assert isinstance(result, int)
    return result


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
