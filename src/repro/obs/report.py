"""The ``python -m repro.obs`` command-line interface.

Two subcommands:

``report``
    Render a registry snapshot (``registry.json``) as a human-readable
    table, optionally summarizing a trace JSONL alongside it.  Pass a
    snapshot file or a directory containing ``registry.json`` /
    ``trace.jsonl`` (the layout ``smoke`` writes).

``smoke``
    Run a small fully-traced experiment (sample rate 1.0 by default)
    and write the three export artifacts — ``registry.json``,
    ``metrics.prom``, ``trace.jsonl`` — into ``--out``.  This is what
    the CI observability job runs before validating the exports with
    ``tests/obs/check_exports.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .registry import MetricsRegistry
from .schema import (
    validate_prometheus_text,
    validate_registry_snapshot,
    validate_trace_file,
)
from .sink import Observer
from .trace import TraceSampler, TraceWriter


def _load_snapshot(path: Path) -> dict[str, object]:
    with open(path, encoding="utf-8") as fh:
        snapshot = json.load(fh)
    validate_registry_snapshot(snapshot)
    return snapshot


def render_snapshot(snapshot: dict[str, object]) -> str:
    """A plain-text table of every family and sample in a snapshot."""
    lines: list[str] = []
    metrics = snapshot["metrics"]
    assert isinstance(metrics, list)
    for family in metrics:
        lines.append(f"{family['name']} ({family['type']})")
        if family.get("help"):
            lines.append(f"  # {family['help']}")
        for sample in family["samples"]:
            labels = ",".join(
                f"{k}={v}" for k, v in sorted(sample["labels"].items())
            )
            prefix = f"  {{{labels}}}" if labels else "  (no labels)"
            if family["type"] == "histogram":
                lines.append(
                    f"{prefix} count={sample['count']} sum={sample['sum']}"
                )
            else:
                lines.append(f"{prefix} {sample['value']}")
    if not lines:
        lines.append("(empty registry)")
    return "\n".join(lines)


def _cmd_report(args: argparse.Namespace) -> int:
    target = Path(args.path)
    snapshot_path = target
    trace_path: Path | None = None
    if target.is_dir():
        snapshot_path = target / "registry.json"
        candidate = target / "trace.jsonl"
        if candidate.exists():
            trace_path = candidate
    snapshot = _load_snapshot(snapshot_path)
    print(render_snapshot(snapshot))
    if trace_path is not None:
        stats = validate_trace_file(trace_path)
        print(
            f"\ntrace: {stats.headers} run(s), "
            f"{stats.requests} sampled request record(s)"
        )
    return 0


def run_smoke(
    out_dir: Path,
    num_requests: int = 5_000,
    num_objects: int = 200,
    seed: int = 2013,
    sample_rate: float = 1.0,
    sample_seed: int = 0,
    engine: str = "reference",
) -> dict[str, Path]:
    """Run a tiny traced experiment; write and validate all exports.

    Returns the paths of the written artifacts.  Import of the core
    package happens here (not at module import) so the obs package
    stays usable standalone.
    """
    from ..core.architectures import BASELINE_ARCHITECTURES
    from ..core.experiment import ExperimentConfig, run_experiment

    out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = out_dir / "trace.jsonl"
    registry_path = out_dir / "registry.json"
    prom_path = out_dir / "metrics.prom"

    registry = MetricsRegistry()
    sampler = TraceSampler(rate=sample_rate, seed=sample_seed)
    with TraceWriter(trace_path, sampler=sampler) as tracer:
        observer = Observer(registry=registry, tracer=tracer)
        config = ExperimentConfig(
            tree_depth=3,
            num_objects=num_objects,
            num_requests=num_requests,
            seed=seed,
        )
        run_experiment(
            config,
            BASELINE_ARCHITECTURES,
            engine=engine,
            observer=observer,
        )

    registry_path.write_text(registry.to_json() + "\n", encoding="utf-8")
    prom_text = registry.to_prometheus()
    prom_path.write_text(prom_text, encoding="utf-8")

    validate_registry_snapshot(registry.snapshot())
    validate_prometheus_text(prom_text)
    validate_trace_file(trace_path)
    return {
        "registry": registry_path,
        "prometheus": prom_path,
        "trace": trace_path,
    }


def _cmd_smoke(args: argparse.Namespace) -> int:
    paths = run_smoke(
        Path(args.out),
        num_requests=args.requests,
        num_objects=args.objects,
        seed=args.seed,
        sample_rate=args.sample_rate,
        sample_seed=args.sample_seed,
        engine=args.engine,
    )
    stats = validate_trace_file(paths["trace"])
    print(
        f"smoke run ok: {stats.headers} run(s), "
        f"{stats.requests} trace record(s)"
    )
    for kind, path in sorted(paths.items()):
        print(f"  {kind}: {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.obs`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability exports: render reports, run smoke runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="render a registry snapshot (file or smoke out dir)"
    )
    report.add_argument("path", help="registry.json or a directory with it")
    report.set_defaults(func=_cmd_report)

    smoke = sub.add_parser(
        "smoke", help="run a small traced experiment and write exports"
    )
    smoke.add_argument("--out", required=True, help="output directory")
    smoke.add_argument("--requests", type=int, default=5_000)
    smoke.add_argument("--objects", type=int, default=200)
    smoke.add_argument("--seed", type=int, default=2013)
    smoke.add_argument("--sample-rate", type=float, default=1.0)
    smoke.add_argument("--sample-seed", type=int, default=0)
    smoke.add_argument(
        "--engine", choices=("reference", "fast"), default="reference"
    )
    smoke.set_defaults(func=_cmd_smoke)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    result = args.func(args)
    assert isinstance(result, int)
    return result


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
