"""The engine-facing observability sink.

:class:`Observer` bundles the two output channels — a
:class:`~repro.obs.registry.MetricsRegistry` and an optional
:class:`~repro.obs.trace.TraceWriter` — behind the single object the
simulation engines consume.  The hot-loop contract:

* ``Simulator(..., observer=None)`` is the default, and with it both
  engines execute the exact pre-observability instruction stream —
  no recorder allocation, no per-request branches beyond one ``is
  None`` check hoisted out of the loop where possible;
* with an observer attached, engines allocate one
  :class:`RunRecorder` per run and update its flat counters inline
  (gated behind the sink check — lint rule ``O501``), then
  :meth:`Observer.finish_run` folds the recorder and the finished
  :class:`~repro.core.metrics.SimulationResult` into the registry.

Instrumentation never touches simulation state or any RNG, so enabling
observability cannot change a single simulated number — the obs-parity
tests pin this engine by engine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .registry import MetricsRegistry
from .trace import TraceWriter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.metrics import SimulationResult


class RunRecorder:
    """Flat per-run counters the engine hot loops update inline.

    One slot per global node id; plain Python lists so an increment is
    a single ``list[int] += 1``.  ``serves`` counts measured requests
    by serving node; ``copies`` counts response-path cache copy events
    (insert or refresh) over the whole stream; ``evictions`` counts
    objects evicted to make room.
    """

    __slots__ = ("architecture", "serves", "copies", "evictions")

    def __init__(self, architecture: str, num_nodes: int) -> None:
        self.architecture = architecture
        self.serves = [0] * num_nodes
        self.copies = [0] * num_nodes
        self.evictions = [0] * num_nodes


class Observer:
    """Metrics registry + optional tracer, as one engine-facing sink."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: TraceWriter | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer

    def start_run(
        self,
        architecture: str,
        routing: str,
        num_nodes: int,
        num_requests: int,
        first_measured: int,
    ) -> RunRecorder:
        """Open one simulation run: header record + fresh recorder."""
        if self.tracer is not None:
            self.tracer.write_header(
                architecture, routing, num_requests, first_measured
            )
        return RunRecorder(architecture, num_nodes)

    def finish_run(
        self, recorder: RunRecorder, result: "SimulationResult"
    ) -> None:
        """Fold a finished run into the registry.

        Per-node counters come from the recorder; per-link transfers,
        per-PoP origin serves, and the aggregate tallies come from the
        result itself (already accumulated by the engine, so flushing
        them here costs nothing in the hot loop).
        """
        reg = self.registry
        arch = recorder.architecture
        reg.counter(
            "repro_requests_total",
            help="measured requests simulated",
            architecture=arch,
        ).inc(result.num_requests)
        reg.counter(
            "repro_cache_served_total",
            help="measured requests served by a cache on the request path",
            architecture=arch,
        ).inc(result.cache_served)
        reg.counter(
            "repro_coop_served_total",
            help="measured requests served via scoped sibling cooperation",
            architecture=arch,
        ).inc(result.coop_served)
        reg.counter(
            "repro_fallback_served_total",
            help="measured requests that routed around a failed cache node",
            architecture=arch,
        ).inc(result.fallback_served)
        reg.counter(
            "repro_latency_hops_total",
            help="total hop-cost latency over measured requests",
            architecture=arch,
        ).inc(result.total_latency)
        for pop, count in enumerate(result.origin_serves):
            if count:
                reg.counter(
                    "repro_origin_served_total",
                    help="measured requests served by each origin PoP",
                    architecture=arch,
                    pop=pop,
                ).inc(float(count))
        for link, transfers in enumerate(result.link_transfers):
            if transfers:
                reg.counter(
                    "repro_link_transfers_total",
                    help="size-weighted object transfers per link",
                    architecture=arch,
                    link=link,
                ).inc(float(transfers))
        for node, count in enumerate(recorder.serves):
            if count:
                reg.counter(
                    "repro_node_serves_total",
                    help="measured requests served per node (caches and "
                    "origin roots)",
                    architecture=arch,
                    node=node,
                ).inc(count)
        for node, count in enumerate(recorder.copies):
            if count:
                reg.counter(
                    "repro_node_copies_total",
                    help="response-path cache copy events per node "
                    "(insert or recency refresh, full stream)",
                    architecture=arch,
                    node=node,
                ).inc(count)
        for node, count in enumerate(recorder.evictions):
            if count:
                reg.counter(
                    "repro_node_evictions_total",
                    help="cache evictions per node (full stream)",
                    architecture=arch,
                    node=node,
                ).inc(count)

    def close(self) -> None:
        """Close the tracer (when any)."""
        if self.tracer is not None:
            self.tracer.close()
