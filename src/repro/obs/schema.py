"""Validators for the observability export formats.

Three artifacts leave a traced run, and CI validates all of them with
the checkers here (``tests/obs/check_exports.py`` is a thin CLI over
this module):

* the **trace JSONL** file — one JSON object per line, versioned via
  the ``v`` field, ``header`` records opening each run and ``request``
  records carrying the per-request fields;
* the **registry snapshot** — the dict produced by
  :meth:`repro.obs.registry.MetricsRegistry.snapshot`;
* the **Prometheus text** exposition — ``# HELP``/``# TYPE``/sample
  lines as produced by ``to_prometheus``.

All validators raise :class:`SchemaError` (a ``ValueError``) with the
offending location in the message, and return summary statistics so
callers can assert non-emptiness.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass
from pathlib import Path

from .progress import PROGRESS_SCHEMA
from .registry import REGISTRY_SCHEMA
from .spans import SPAN_KINDS, SPAN_SCHEMA, span_id
from .trace import TRACE_VERSION


class SchemaError(ValueError):
    """An export artifact does not conform to its schema."""


#: Required fields and their types for each trace record kind.
_HEADER_FIELDS: dict[str, type | tuple[type, ...]] = {
    "architecture": str,
    "routing": str,
    "requests": int,
    "first_measured": int,
    "sample_rate": (int, float),
    "sample_seed": int,
}

_REQUEST_FIELDS: dict[str, type | tuple[type, ...]] = {
    "i": int,
    "pop": int,
    "leaf": int,
    "object": int,
    "serving": int,
    "origin": (int, type(None)),
    "cost": (int, float),
    "size": (int, float),
    "coop": bool,
    "fallback": bool,
}


@dataclass(frozen=True)
class TraceStats:
    """What a validated trace file contained."""

    headers: int
    requests: int


def validate_trace_record(record: object, where: str = "record") -> str:
    """Validate one parsed trace record; returns its kind."""
    if not isinstance(record, dict):
        raise SchemaError(f"{where}: not a JSON object")
    version = record.get("v")
    if version != TRACE_VERSION:
        raise SchemaError(
            f"{where}: schema version {version!r} != {TRACE_VERSION}"
        )
    kind = record.get("kind")
    if kind == "header":
        fields = _HEADER_FIELDS
    elif kind == "request":
        fields = _REQUEST_FIELDS
    else:
        raise SchemaError(f"{where}: unknown record kind {kind!r}")
    for name, expected in fields.items():
        if name not in record:
            raise SchemaError(f"{where}: missing field {name!r}")
        value = record[name]
        if isinstance(value, bool) and expected is not bool:
            raise SchemaError(f"{where}: field {name!r} is a bool")
        if not isinstance(value, expected):
            raise SchemaError(
                f"{where}: field {name!r} has type "
                f"{type(value).__name__}"
            )
        if (
            name in ("cost", "size", "sample_rate")
            and isinstance(value, (int, float))
            and not math.isfinite(value)
        ):
            raise SchemaError(f"{where}: field {name!r} is not finite")
    extras = set(record) - set(fields) - {"v", "kind"}
    if extras:
        raise SchemaError(
            f"{where}: unexpected fields {sorted(extras)}"
        )
    return str(kind)


def validate_trace_file(path: str | Path) -> TraceStats:
    """Validate a whole JSONL trace; the file must start with a header."""
    headers = 0
    requests = 0
    seen_header = False
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                raise SchemaError(f"line {lineno}: blank line in trace")
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"line {lineno}: invalid JSON: {exc}") from exc
            kind = validate_trace_record(record, where=f"line {lineno}")
            if kind == "header":
                headers += 1
                seen_header = True
            else:
                if not seen_header:
                    raise SchemaError(
                        f"line {lineno}: request record before any header"
                    )
                requests += 1
    if headers == 0:
        raise SchemaError("trace contains no header record")
    return TraceStats(headers=headers, requests=requests)


# ----------------------------------------------------------------------
# Registry snapshot
# ----------------------------------------------------------------------
_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def validate_registry_snapshot(snapshot: object) -> int:
    """Validate a registry snapshot dict; returns the sample count."""
    if not isinstance(snapshot, dict):
        raise SchemaError("snapshot: not a JSON object")
    if snapshot.get("schema") != REGISTRY_SCHEMA:
        raise SchemaError(
            f"snapshot: schema {snapshot.get('schema')!r} != "
            f"{REGISTRY_SCHEMA!r}"
        )
    metrics = snapshot.get("metrics")
    if not isinstance(metrics, list):
        raise SchemaError("snapshot: `metrics` must be a list")
    samples = 0
    previous_name = ""
    for index, family in enumerate(metrics):
        where = f"metrics[{index}]"
        if not isinstance(family, dict):
            raise SchemaError(f"{where}: not an object")
        name = family.get("name")
        if not isinstance(name, str) or not _METRIC_NAME_RE.match(name):
            raise SchemaError(f"{where}: invalid metric name {name!r}")
        if name <= previous_name:
            raise SchemaError(
                f"{where}: families out of order ({name!r} after "
                f"{previous_name!r})"
            )
        previous_name = name
        if family.get("type") not in ("counter", "gauge", "histogram"):
            raise SchemaError(
                f"{where}: invalid type {family.get('type')!r}"
            )
        family_samples = family.get("samples")
        if not isinstance(family_samples, list) or not family_samples:
            raise SchemaError(f"{where}: `samples` must be non-empty")
        for j, sample in enumerate(family_samples):
            swhere = f"{where}.samples[{j}]"
            if not isinstance(sample, dict):
                raise SchemaError(f"{swhere}: not an object")
            labels = sample.get("labels")
            if not isinstance(labels, dict):
                raise SchemaError(f"{swhere}: missing labels object")
            for label in labels:
                if not _LABEL_NAME_RE.match(label):
                    raise SchemaError(
                        f"{swhere}: invalid label name {label!r}"
                    )
            if family["type"] == "histogram":
                if "buckets" not in sample or "sum" not in sample:
                    raise SchemaError(
                        f"{swhere}: histogram sample missing buckets/sum"
                    )
            elif not isinstance(sample.get("value"), (int, float)):
                raise SchemaError(f"{swhere}: missing numeric value")
            samples += 1
    return samples


# ----------------------------------------------------------------------
# Span files
# ----------------------------------------------------------------------
_SPAN_ID_RE = re.compile(r"^[0-9a-f]{16}$")


@dataclass(frozen=True)
class SpanStats:
    """What a validated span file contained."""

    spans: int
    roots: int


def validate_span_record(record: object, where: str = "record") -> str:
    """Validate one parsed span record; returns its path.

    Beyond field shape this re-derives the content-addressed ids: the
    ``id`` must equal ``span_id(seed, path)`` and ``parent`` must equal
    the id of the path's parent segment (``None`` for roots) — so a
    span file cannot claim a hierarchy its paths do not encode.
    """
    if not isinstance(record, dict):
        raise SchemaError(f"{where}: not a JSON object")
    if record.get("schema") != SPAN_SCHEMA:
        raise SchemaError(
            f"{where}: schema {record.get('schema')!r} != {SPAN_SCHEMA!r}"
        )
    path = record.get("path")
    if not isinstance(path, str) or not path or path.startswith("/"):
        raise SchemaError(f"{where}: invalid span path {path!r}")
    if any(not segment for segment in path.split("/")):
        raise SchemaError(f"{where}: empty segment in path {path!r}")
    name = record.get("name")
    if name != path.rsplit("/", 1)[-1]:
        raise SchemaError(
            f"{where}: name {name!r} is not the last path segment"
        )
    if record.get("kind") not in SPAN_KINDS:
        raise SchemaError(
            f"{where}: kind {record.get('kind')!r} not in {SPAN_KINDS}"
        )
    seed = record.get("seed")
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise SchemaError(f"{where}: seed must be an int")
    identifier = record.get("id")
    if not isinstance(identifier, str) or not _SPAN_ID_RE.match(identifier):
        raise SchemaError(f"{where}: malformed id {identifier!r}")
    if identifier != span_id(seed, path):
        raise SchemaError(
            f"{where}: id {identifier!r} != sha256({seed}:{path!r})"
        )
    parent = record.get("parent")
    if "/" in path:
        expected = span_id(seed, path.rsplit("/", 1)[0])
        if parent != expected:
            raise SchemaError(
                f"{where}: parent {parent!r} != id of parent path"
            )
    elif parent is not None:
        raise SchemaError(f"{where}: root span has parent {parent!r}")
    if not isinstance(record.get("attrs"), dict):
        raise SchemaError(f"{where}: `attrs` must be an object")
    observations = record.get("observations")
    if not isinstance(observations, dict):
        raise SchemaError(f"{where}: `observations` must be an object")
    for obs_name, stats in observations.items():
        owhere = f"{where}.observations[{obs_name!r}]"
        if not isinstance(stats, dict):
            raise SchemaError(f"{owhere}: not an object")
        if set(stats) != {"count", "sum", "min", "max"}:
            raise SchemaError(
                f"{owhere}: fields {sorted(stats)} != "
                "['count', 'max', 'min', 'sum']"
            )
        count = stats["count"]
        if isinstance(count, bool) or not isinstance(count, int) or count < 1:
            raise SchemaError(f"{owhere}: count must be a positive int")
        for field in ("sum", "min", "max"):
            value = stats[field]
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ) or not math.isfinite(value):
                raise SchemaError(
                    f"{owhere}: {field} must be a finite number"
                )
        if stats["min"] > stats["max"]:
            raise SchemaError(f"{owhere}: min exceeds max")
    extras = set(record) - {
        "schema", "id", "parent", "kind", "name", "path", "seed",
        "attrs", "observations",
    }
    if extras:
        raise SchemaError(f"{where}: unexpected fields {sorted(extras)}")
    return path


def validate_span_file(path: str | Path) -> SpanStats:
    """Validate a merged span JSONL export.

    Beyond per-record checks this enforces the canonical file shape:
    strictly increasing path order (which also rules out duplicates)
    and that every non-root span's parent path is present in the file.
    """
    paths: list[str] = []
    roots = 0
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                raise SchemaError(f"line {lineno}: blank line in span file")
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(
                    f"line {lineno}: invalid JSON: {exc}"
                ) from exc
            span_path = validate_span_record(record, where=f"line {lineno}")
            if paths and span_path <= paths[-1]:
                raise SchemaError(
                    f"line {lineno}: paths out of order ({span_path!r} "
                    f"after {paths[-1]!r})"
                )
            paths.append(span_path)
            if "/" not in span_path:
                roots += 1
    if not paths:
        raise SchemaError("span file contains no records")
    known = set(paths)
    for span_path in paths:
        if "/" in span_path:
            parent = span_path.rsplit("/", 1)[0]
            if parent not in known:
                raise SchemaError(
                    f"span {span_path!r}: parent path {parent!r} missing"
                )
    return SpanStats(spans=len(paths), roots=roots)


# ----------------------------------------------------------------------
# Progress heartbeats
# ----------------------------------------------------------------------
def validate_heartbeat(payload: object) -> None:
    """Validate one progress heartbeat payload."""
    if not isinstance(payload, dict):
        raise SchemaError("heartbeat: not a JSON object")
    if payload.get("schema") != PROGRESS_SCHEMA:
        raise SchemaError(
            f"heartbeat: schema {payload.get('schema')!r} != "
            f"{PROGRESS_SCHEMA!r}"
        )
    for field in ("total", "done", "failed", "in_flight", "retried"):
        value = payload.get(field)
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise SchemaError(
                f"heartbeat: {field} must be a non-negative int"
            )
    elapsed = payload.get("elapsed_seconds")
    if not isinstance(elapsed, (int, float)) or isinstance(elapsed, bool) \
            or not math.isfinite(elapsed) or elapsed < 0:
        raise SchemaError(
            "heartbeat: elapsed_seconds must be a finite non-negative number"
        )
    eta = payload.get("eta_seconds")
    if eta is not None and (
        isinstance(eta, bool)
        or not isinstance(eta, (int, float))
        or not math.isfinite(eta)
        or eta < 0
    ):
        raise SchemaError(
            "heartbeat: eta_seconds must be null or a finite "
            "non-negative number"
        )
    if int(payload["done"]) + int(payload["failed"]) > int(payload["total"]):
        raise SchemaError("heartbeat: done + failed exceeds total")
    counters = payload.get("counters")
    if not isinstance(counters, dict):
        raise SchemaError("heartbeat: `counters` must be an object")
    for name, value in counters.items():
        if not isinstance(name, str) or not _METRIC_NAME_RE.match(name):
            raise SchemaError(f"heartbeat: invalid counter name {name!r}")
        if isinstance(value, bool) or not isinstance(value, (int, float)) \
                or not math.isfinite(value):
            raise SchemaError(
                f"heartbeat: counter {name!r} must be a finite number"
            )
    extras = set(payload) - {
        "schema", "total", "done", "failed", "in_flight", "retried",
        "elapsed_seconds", "eta_seconds", "counters",
    }
    if extras:
        raise SchemaError(f"heartbeat: unexpected fields {sorted(extras)}")


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$'
)


def validate_prometheus_text(text: str) -> int:
    """Validate Prometheus exposition text; returns the sample count.

    Checks line grammar, that every sample's base name was declared by
    a preceding ``# TYPE`` line (histogram samples may extend it with
    ``_bucket``/``_sum``/``_count``), and that values parse as floats.
    """
    declared: dict[str, str] = {}
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            raise SchemaError(f"line {lineno}: blank line")
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram",
            ):
                raise SchemaError(f"line {lineno}: malformed TYPE line")
            declared[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            raise SchemaError(f"line {lineno}: unknown comment line")
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise SchemaError(f"line {lineno}: malformed sample line")
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            stem = name.removesuffix(suffix)
            if stem != name and declared.get(stem) == "histogram":
                base = stem
                break
        if base not in declared:
            raise SchemaError(
                f"line {lineno}: sample {name!r} has no TYPE declaration"
            )
        labels = match.group("labels")
        if labels is not None:
            body = labels[1:-1]
            if body:
                for pair in _split_label_pairs(body, lineno):
                    if not _LABEL_PAIR_RE.match(pair):
                        raise SchemaError(
                            f"line {lineno}: malformed label pair {pair!r}"
                        )
        value = match.group("value")
        if value not in ("NaN", "+Inf", "-Inf"):
            try:
                float(value)
            except ValueError as exc:
                raise SchemaError(
                    f"line {lineno}: non-numeric value {value!r}"
                ) from exc
        samples += 1
    if samples == 0:
        raise SchemaError("exposition contains no samples")
    return samples


def _split_label_pairs(body: str, lineno: int) -> list[str]:
    """Split ``k="v",k2="v2"`` respecting escaped quotes inside values."""
    pairs: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
            continue
        current.append(char)
    if in_quotes or escaped:
        raise SchemaError(f"line {lineno}: unterminated label value")
    pairs.append("".join(current))
    return pairs
