"""Hierarchical, deterministic span tracing for runs, sweeps, and benches.

A *span* names one structural unit of work — the hierarchy is
``run → sweep → chunk → point → phase`` — and carries deterministic
attributes (point keys, seeds, request counts) and aggregated
observations (queue depths, PIT occupancies).  Spans answer the
question the flat metrics registry cannot: *which chunk* ran *which
points*, under *which seed*, and what the event scheduler saw while
they ran.

The determinism contract mirrors the trace writer's: a span file for a
given seed is **byte-identical across runs and across worker counts**.
Three design rules make that hold:

* span IDs are content-addressed — ``sha256(seed:path)`` over the
  span's slash-separated path from the root, never a wall-clock or a
  memory address;
* records carry only deterministic values: structure, seeds, counts,
  and simulated-clock observations.  Wall-clock timings belong in the
  metrics registry (``repro_phase_seconds``), never in a span record;
* export order is canonical — records sort by path (a parent's path is
  a strict prefix of its children's, so parents always precede
  children), and serialization is canonical JSON (sorted keys, compact
  separators).

Worker processes build :class:`SpanTracker` instances rooted at a chunk
path and ship ``records()`` back with their results; the parent adopts
them with :meth:`SpanTracker.extend` and writes one merged JSONL.  The
schema is versioned as :data:`SPAN_SCHEMA` and validated by
:func:`repro.obs.schema.validate_span_file`.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterable, Iterator, Mapping

#: Version tag of the span record schema (bump on breaking changes).
SPAN_SCHEMA = "repro.obs/spans/v1"

#: The span hierarchy, outermost first.
SPAN_KINDS = ("run", "sweep", "chunk", "point", "phase")

#: Hex digits of the content-addressed span id.
_ID_HEX = 16


def span_id(seed: int, path: str) -> str:
    """The deterministic id of the span at ``path`` under ``seed``."""
    digest = hashlib.sha256(f"{seed}:{path}".encode()).hexdigest()
    return digest[:_ID_HEX]


def _parent_path(path: str) -> str | None:
    if "/" not in path:
        return None
    return path.rsplit("/", 1)[0]


class Span:
    """One open span: identity, deterministic attrs, and observations."""

    __slots__ = ("name", "kind", "path", "seed", "attrs", "observations")

    def __init__(self, name: str, kind: str, path: str, seed: int) -> None:
        if kind not in SPAN_KINDS:
            raise ValueError(
                f"span kind {kind!r} not in hierarchy {SPAN_KINDS}"
            )
        if not name or "/" in name:
            raise ValueError(f"span name {name!r} must be non-empty, no '/'")
        self.name = name
        self.kind = kind
        self.path = path
        self.seed = seed
        self.attrs: dict[str, object] = {}
        #: name -> [count, total, min, max] over deterministic values.
        self.observations: dict[str, list[float]] = {}

    @property
    def id(self) -> str:
        """Content-addressed id (pure function of seed and path)."""
        return span_id(self.seed, self.path)

    def annotate(self, **attrs: object) -> "Span":
        """Attach deterministic attributes (last write per key wins)."""
        self.attrs.update(attrs)
        return self

    def observe(self, name: str, value: float) -> None:
        """Aggregate one deterministic observation (count/sum/min/max).

        Aggregation keeps span records O(1) regardless of how many
        observations a hot loop makes — the per-event history belongs in
        a histogram, not a span.
        """
        value = float(value)
        stats = self.observations.get(name)
        if stats is None:
            self.observations[name] = [1.0, value, value, value]
        else:
            stats[0] += 1.0
            stats[1] += value
            if value < stats[2]:
                stats[2] = value
            if value > stats[3]:
                stats[3] = value

    def record(self) -> dict[str, object]:
        """The span as its schema-versioned export record."""
        parent = _parent_path(self.path)
        return {
            "schema": SPAN_SCHEMA,
            "id": self.id,
            "parent": None if parent is None else span_id(self.seed, parent),
            "kind": self.kind,
            "name": self.name,
            "path": self.path,
            "seed": self.seed,
            "attrs": dict(self.attrs),
            "observations": {
                name: {
                    "count": int(stats[0]),
                    "sum": stats[1],
                    "min": stats[2],
                    "max": stats[3],
                }
                for name, stats in sorted(self.observations.items())
            },
        }


class SpanTracker:
    """Builds one deterministic span tree, optionally under a prefix.

    ``seed`` keys every span id; ``prefix`` roots the tracker somewhere
    inside a larger tree (worker chunks pass the chunk path their parent
    assigned, so their point spans link to the parent's chunk span by id
    without sharing any state).  Paths must be unique within a tracker —
    a duplicate means two spans would collide on one id.
    """

    def __init__(self, seed: int, prefix: str = "") -> None:
        self.seed = seed
        self.prefix = prefix
        self._stack: list[Span] = []
        self._finished: list[Span] = []
        self._paths: set[str] = set()

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    @property
    def current(self) -> Span | None:
        """The innermost open span (None outside any ``span`` block)."""
        return self._stack[-1] if self._stack else None

    def _child_path(self, name: str) -> str:
        if self._stack:
            return f"{self._stack[-1].path}/{name}"
        if self.prefix:
            return f"{self.prefix}/{name}"
        return name

    @contextmanager
    def span(self, name: str, kind: str, **attrs: object) -> Iterator[Span]:
        """Open one span as the child of the innermost open span."""
        opened = self.open(name, kind, **attrs)
        try:
            yield opened
        finally:
            self.close(opened)

    def open(self, name: str, kind: str, **attrs: object) -> Span:
        """Non-context-manager form of :meth:`span` (close explicitly)."""
        path = self._child_path(name)
        if path in self._paths:
            raise ValueError(f"duplicate span path {path!r}")
        self._paths.add(path)
        opened = Span(name, kind, path, self.seed)
        opened.annotate(**attrs)
        self._stack.append(opened)
        return opened

    def close(self, opened: Span) -> None:
        """Close ``opened`` (must be the innermost open span)."""
        if not self._stack or self._stack[-1] is not opened:
            raise ValueError(f"span {opened.path!r} is not innermost")
        self._stack.pop()
        self._finished.append(opened)

    def observe(self, name: str, value: float) -> None:
        """Record an observation on the innermost open span (must exist)."""
        if not self._stack:
            raise ValueError("no open span to observe into")
        self._stack[-1].observe(name, value)

    # ------------------------------------------------------------------
    # Export / merge
    # ------------------------------------------------------------------
    def records(self) -> list[dict[str, object]]:
        """Every finished span's record, in canonical (path) order."""
        if self._stack:
            raise ValueError(
                f"span {self._stack[-1].path!r} is still open"
            )
        return sorted(
            (span.record() for span in self._finished),
            key=lambda record: record["path"],  # type: ignore[arg-type]
        )

    def extend(self, records: Iterable[Mapping[str, object]]) -> None:
        """Adopt already-built records (worker chunks shipping home).

        Adopted records keep their ids verbatim; their paths join the
        uniqueness set so a parent cannot accidentally mint a colliding
        span after adopting.
        """
        for record in records:
            path = record["path"]
            assert isinstance(path, str)
            if path in self._paths:
                raise ValueError(f"duplicate span path {path!r}")
            self._paths.add(path)
            adopted = Span(
                str(record["name"]),
                str(record["kind"]),
                path,
                int(record["seed"]),  # type: ignore[arg-type]
            )
            attrs = record.get("attrs")
            if isinstance(attrs, Mapping):
                adopted.annotate(**attrs)
            observations = record.get("observations")
            if isinstance(observations, Mapping):
                for name, stats in observations.items():
                    adopted.observations[str(name)] = [
                        float(stats["count"]),
                        float(stats["sum"]),
                        float(stats["min"]),
                        float(stats["max"]),
                    ]
            self._finished.append(adopted)

    def to_jsonl(self) -> str:
        """All records as canonical JSONL (the byte-stable export)."""
        return "".join(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            for record in self.records()
        )

    def write(self, destination: str | Path | IO[str]) -> None:
        """Write the canonical JSONL export to a path or file object."""
        text = self.to_jsonl()
        if isinstance(destination, (str, Path)):
            Path(destination).write_text(text, encoding="utf-8")
        else:
            destination.write(text)


def merge_span_records(
    *record_lists: Iterable[Mapping[str, object]],
) -> list[dict[str, object]]:
    """Merge worker record lists into one canonically ordered list.

    Deterministic regardless of the order the lists arrive in: the
    result sorts by path, and a duplicate path (two workers claiming the
    same span) raises rather than silently keeping either.
    """
    merged: dict[str, dict[str, object]] = {}
    for records in record_lists:
        for record in records:
            path = record["path"]
            assert isinstance(path, str)
            if path in merged:
                raise ValueError(f"duplicate span path {path!r} in merge")
            merged[path] = dict(record)
    return [merged[path] for path in sorted(merged)]
