"""Profiling hooks: wall-clock phase timers and simulated-clock spans.

Two kinds of time flow through this codebase and they must never mix:

* **wall-clock** time is what the benchmarks optimize — setup vs
  simulation vs sweep phases.  :class:`PhaseTimer` measures it with
  ``time.perf_counter`` and accumulates per-phase totals into gauge
  ``repro_phase_seconds{phase=...}``.  Wall-clock readings never feed
  a simulation, so this module lives outside the determinism-linted
  packages; results stay reproducible, timings legitimately vary.
* **simulated** time is the :class:`repro.idicn.simnet.SimNet` clock.
  :class:`SimClockTimer` measures spans of it (retry backoff, outage
  windows) against an injected clock callable and records them into
  histogram ``repro_sim_span_seconds{span=...}`` — fully deterministic
  for a given seed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

from .registry import MetricsRegistry

#: Gauge family for wall-clock phase totals.
PHASE_METRIC = "repro_phase_seconds"

#: Histogram family for simulated-clock spans.
SIM_SPAN_METRIC = "repro_sim_span_seconds"


class PhaseTimer:
    """Accumulating wall-clock timer keyed by phase name.

    ``with timer.phase("figure6_fast"): ...`` adds the elapsed wall
    seconds to the phase's running total, mirrored into the attached
    registry (when any) as ``repro_phase_seconds{phase=...}``.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry
        self.timings: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one phase; re-entering a name accumulates."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timings[name] = self.timings.get(name, 0.0) + elapsed
            if self.registry is not None:
                self.registry.gauge(
                    PHASE_METRIC,
                    help="wall-clock seconds spent per named phase",
                    phase=name,
                ).add(elapsed)

    def as_dict(self, digits: int = 3) -> dict[str, float]:
        """Rounded phase totals (for ``BENCH_*.json`` reports)."""
        return {
            name: round(seconds, digits)
            for name, seconds in sorted(self.timings.items())
        }


class SimClockTimer:
    """Deterministic span timer over an injected simulated clock.

    ``clock`` is any zero-argument callable returning the current
    simulated time (e.g. ``lambda: net.clock``).  Spans land in the
    registry histogram ``repro_sim_span_seconds{span=...}``.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.clock = clock
        self.registry = registry
        self.spans: dict[str, float] = {}

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Measure one simulated-time span; re-entering accumulates."""
        start = self.clock()
        try:
            yield
        finally:
            elapsed = self.clock() - start
            self.spans[name] = self.spans.get(name, 0.0) + elapsed
            if self.registry is not None:
                self.registry.histogram(
                    SIM_SPAN_METRIC,
                    help="simulated-clock seconds per named span",
                    span=name,
                ).observe(elapsed)
