"""Live progress heartbeats for long-running sweeps.

A multi-hour sweep must be observable *while it runs*, not only after:
:class:`ProgressReporter` maintains one JSON heartbeat file that always
parses — every update writes a temporary file in the same directory and
``os.replace``s it over the target, so a reader (``python -m repro.obs
watch``, a dashboard, a shell loop) never sees a torn write.

The heartbeat carries the sweep's control-plane state: points done /
failed / in flight / retried, the merged counter totals from the
sharded registries, wall-clock elapsed, and a naive rate-based ETA.  It
is versioned (:data:`PROGRESS_SCHEMA`) and validated by
:func:`repro.obs.schema.validate_heartbeat`.

The zero-overhead contract applies as everywhere in ``repro.obs``:
``progress=None`` (the default everywhere a reporter is accepted) must
be bit-identical to pre-heartbeat behaviour — lint rule ``O502`` pins
the gating in the sweep hot loops.  Updates are cadence-batched on
*completion counts* (every ``every``-th finished point, plus the final
state), so a million-point sweep does not fsync a million heartbeats.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Mapping

#: Version tag of the heartbeat schema (bump on breaking field changes).
PROGRESS_SCHEMA = "repro.obs/progress/v1"


class ProgressReporter:
    """Atomically maintained progress heartbeat for one run.

    ``path`` is the heartbeat file; ``total`` the number of points the
    run will attempt; ``every`` the completion-count cadence (1 writes
    on every completion; N writes on every N-th).  ``clock`` is
    injectable for tests — it is *wall* time and feeds only the
    ``elapsed_seconds``/``eta_seconds`` fields, never a simulated
    number.
    """

    def __init__(
        self,
        path: str | Path,
        total: int = 0,
        every: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if every < 1:
            raise ValueError("update cadence `every` must be >= 1")
        self.path = Path(path)
        self.total = int(total)
        self.every = every
        self._clock = clock
        self._start = clock()
        self.done = 0
        self.failed = 0
        self.in_flight = 0
        self.retried = 0
        self.counters: dict[str, float] = {}
        self.writes = 0
        self._last_written = -1

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def start(self, total: int | None = None) -> None:
        """Write the initial heartbeat (optionally fixing ``total``)."""
        if total is not None:
            self.total = int(total)
        self._write()

    def update(
        self,
        done: int,
        failed: int = 0,
        in_flight: int = 0,
        retried: int = 0,
        counters: Mapping[str, float] | None = None,
        force: bool = False,
    ) -> bool:
        """Record progress; write the heartbeat when the cadence hits.

        Returns whether a write happened.  ``counters`` replaces the
        exported counter totals wholesale (pass
        ``registry.totals()``).
        """
        self.done = int(done)
        self.failed = int(failed)
        self.in_flight = int(in_flight)
        self.retried = int(retried)
        if counters is not None:
            self.counters = {k: float(v) for k, v in counters.items()}
        finished = self.done + self.failed
        if not force and finished != 0 and finished % self.every != 0:
            return False
        if not force and finished == self._last_written:
            return False
        self._write()
        return True

    def finish(self) -> None:
        """Write the final heartbeat unconditionally."""
        self._write()

    def _write(self) -> None:
        payload = self.snapshot()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, self.path)
        self.writes += 1
        self._last_written = self.done + self.failed

    def snapshot(self) -> dict[str, object]:
        """The heartbeat payload (what ``_write`` serializes)."""
        elapsed = max(0.0, self._clock() - self._start)
        finished = self.done + self.failed
        eta: float | None = None
        if 0 < finished and self.total > finished and elapsed > 0:
            eta = elapsed / finished * (self.total - finished)
        return {
            "schema": PROGRESS_SCHEMA,
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "in_flight": self.in_flight,
            "retried": self.retried,
            "elapsed_seconds": round(elapsed, 3),
            "eta_seconds": None if eta is None else round(eta, 3),
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
        }


def read_heartbeat(path: str | Path) -> dict[str, object]:
    """Load and schema-check one heartbeat file."""
    from .schema import validate_heartbeat

    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    validate_heartbeat(payload)
    return payload


def render_heartbeat(payload: Mapping[str, object]) -> str:
    """A terminal-friendly rendering of one heartbeat payload."""
    total = int(payload["total"])  # type: ignore[arg-type]
    done = int(payload["done"])  # type: ignore[arg-type]
    failed = int(payload["failed"])  # type: ignore[arg-type]
    finished = done + failed
    width = 30
    filled = (
        min(width, round(width * finished / total)) if total > 0 else 0
    )
    bar = "#" * filled + "-" * (width - filled)
    percent = f"{100.0 * finished / total:5.1f}%" if total > 0 else "  n/a"
    eta = payload.get("eta_seconds")
    lines = [
        f"[{bar}] {percent}  {finished}/{total} points",
        (
            f"  done {done}  failed {failed}"
            f"  in-flight {payload['in_flight']}"
            f"  retried {payload['retried']}"
        ),
        (
            f"  elapsed {payload['elapsed_seconds']}s"
            + (f"  eta {eta}s" if eta is not None else "")
        ),
    ]
    counters = payload.get("counters")
    if isinstance(counters, Mapping) and counters:
        lines.append("  counters:")
        for name in sorted(counters):
            lines.append(f"    {name} = {counters[name]}")
    return "\n".join(lines)
