"""Observability: metrics registry, trace records, profiling hooks.

``repro.obs`` is the cross-cutting observability layer.  It is
strictly *optional*: every producer in the simulator takes its sink as
a ``None``-default argument and, with no sink attached, executes the
exact pre-observability instruction stream (lint rule ``O501`` pins
this for the engine hot loops; the obs-parity tests pin it bit-exactly
for whole simulations).

The pieces:

* :class:`MetricsRegistry` — counters / gauges / histograms with
  deterministic JSON-snapshot and Prometheus text exports;
* :class:`TraceSampler` / :class:`TraceWriter` — reproducible sampled
  per-request JSONL traces (content-addressed sampling);
* :class:`PhaseTimer` / :class:`SimClockTimer` — wall-clock phase and
  simulated-clock span timers;
* :class:`Observer` / :class:`RunRecorder` — the engine-facing sink;
* :class:`SpanTracker` / :class:`Span` — hierarchical deterministic
  spans (run → sweep → chunk → point → phase) with canonical JSONL
  export and worker-record merging;
* :class:`ProgressReporter` — atomically-rewritten live heartbeat
  files, rendered by ``python -m repro.obs watch``;
* :mod:`repro.obs.benchdiff` — the bench regression gate behind
  ``python -m repro.obs bench-diff``;
* :mod:`repro.obs.schema` — validators for all export formats;
* ``python -m repro.obs`` — the ``report`` / ``smoke`` /
  ``sweep-smoke`` / ``watch`` / ``bench-diff`` CLI.
"""

from .benchdiff import MetricDelta, diff_reports, run_bench_diff
from .profiling import PHASE_METRIC, SIM_SPAN_METRIC, PhaseTimer, SimClockTimer
from .progress import (
    PROGRESS_SCHEMA,
    ProgressReporter,
    read_heartbeat,
    render_heartbeat,
)
from .registry import (
    DEFAULT_BUCKETS,
    REGISTRY_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .schema import (
    SchemaError,
    SpanStats,
    TraceStats,
    validate_heartbeat,
    validate_prometheus_text,
    validate_registry_snapshot,
    validate_span_file,
    validate_span_record,
    validate_trace_file,
    validate_trace_record,
)
from .sink import Observer, RunRecorder
from .spans import (
    SPAN_KINDS,
    SPAN_SCHEMA,
    Span,
    SpanTracker,
    merge_span_records,
    span_id,
)
from .trace import TRACE_VERSION, TraceSampler, TraceWriter

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricDelta",
    "MetricsRegistry",
    "Observer",
    "PHASE_METRIC",
    "PROGRESS_SCHEMA",
    "PhaseTimer",
    "ProgressReporter",
    "REGISTRY_SCHEMA",
    "RunRecorder",
    "SIM_SPAN_METRIC",
    "SPAN_KINDS",
    "SPAN_SCHEMA",
    "SchemaError",
    "SimClockTimer",
    "Span",
    "SpanStats",
    "SpanTracker",
    "TRACE_VERSION",
    "TraceSampler",
    "TraceStats",
    "TraceWriter",
    "diff_reports",
    "merge_span_records",
    "read_heartbeat",
    "render_heartbeat",
    "run_bench_diff",
    "span_id",
    "validate_heartbeat",
    "validate_prometheus_text",
    "validate_registry_snapshot",
    "validate_span_file",
    "validate_span_record",
    "validate_trace_file",
    "validate_trace_record",
]
