"""Observability: metrics registry, trace records, profiling hooks.

``repro.obs`` is the cross-cutting observability layer.  It is
strictly *optional*: every producer in the simulator takes its sink as
a ``None``-default argument and, with no sink attached, executes the
exact pre-observability instruction stream (lint rule ``O501`` pins
this for the engine hot loops; the obs-parity tests pin it bit-exactly
for whole simulations).

The pieces:

* :class:`MetricsRegistry` — counters / gauges / histograms with
  deterministic JSON-snapshot and Prometheus text exports;
* :class:`TraceSampler` / :class:`TraceWriter` — reproducible sampled
  per-request JSONL traces (content-addressed sampling);
* :class:`PhaseTimer` / :class:`SimClockTimer` — wall-clock phase and
  simulated-clock span timers;
* :class:`Observer` / :class:`RunRecorder` — the engine-facing sink;
* :mod:`repro.obs.schema` — validators for all export formats;
* ``python -m repro.obs`` — the ``report`` / ``smoke`` CLI.
"""

from .profiling import PHASE_METRIC, SIM_SPAN_METRIC, PhaseTimer, SimClockTimer
from .registry import (
    DEFAULT_BUCKETS,
    REGISTRY_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .schema import (
    SchemaError,
    TraceStats,
    validate_prometheus_text,
    validate_registry_snapshot,
    validate_trace_file,
    validate_trace_record,
)
from .sink import Observer, RunRecorder
from .trace import TRACE_VERSION, TraceSampler, TraceWriter

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observer",
    "PHASE_METRIC",
    "PhaseTimer",
    "REGISTRY_SCHEMA",
    "RunRecorder",
    "SIM_SPAN_METRIC",
    "SchemaError",
    "SimClockTimer",
    "TRACE_VERSION",
    "TraceSampler",
    "TraceStats",
    "TraceWriter",
    "validate_prometheus_text",
    "validate_registry_snapshot",
    "validate_trace_file",
    "validate_trace_record",
]
