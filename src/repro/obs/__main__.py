"""``python -m repro.obs`` — see :mod:`repro.obs.report`."""

import sys

from .report import main

sys.exit(main())
