"""Metric registry: counters, gauges, and histograms with exports.

The registry is the single sink every instrumented component writes
into: per-node cache serves/copies/evictions, per-link transfers,
retry/failover outcomes, fault-injection tallies, and phase timings.
Metrics follow the Prometheus data model — a metric *family* has a
name, a type, and help text; each sample within it is distinguished by
a label set — and export in two formats:

* :meth:`MetricsRegistry.snapshot` — a JSON-serializable dict with a
  versioned schema, families sorted by name and samples sorted by
  label values, so the same counters always serialize to the same
  bytes;
* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` / sample lines), also in
  deterministic order.

Instrumentation cost when *no* registry is attached is zero: every
producer gates its writes behind a ``None`` check on the sink (the
contract rule ``O501`` enforces in the engine hot loops).
"""

from __future__ import annotations

import json
import math
import re
from bisect import bisect_left
from typing import Iterable, Mapping

#: Version tag of the snapshot schema (bump on breaking field changes).
REGISTRY_SCHEMA = "repro.obs/registry/v1"

#: Default histogram bucket upper bounds (latencies in hop-cost units
#: and wall-clock seconds both fit this decade ladder).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _format_value(value: float) -> str:
    """Prometheus sample rendering: integers without a trailing ``.0``.

    Non-finite values use the Prometheus spellings ``+Inf`` / ``-Inf`` /
    ``NaN`` — ``repr(float("inf"))`` yields ``inf``, which Prometheus
    text-format parsers reject.
    """
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class Counter:
    """A monotonically increasing sample."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount


class Gauge:
    """A sample that can move in either direction (timings, sizes)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = float(value)

    def add(self, amount: float) -> None:
        """Shift the gauge by ``amount`` (accumulating phase timers)."""
        self.value += amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches
    the rest.  ``observe`` is O(log buckets).
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly increasing")
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Per-bucket cumulative counts, ending with the total."""
        out: list[int] = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    def merge_from(self, other: "Histogram") -> None:
        """Add ``other``'s per-bucket counts, sum, and count into this one.

        Both histograms must share the same bucket bounds — merging
        across different bucket ladders would silently misbin counts.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.sum += other.sum
        self.count += other.count


#: One family: metric type, help text, and label-set -> sample object.
_TYPES = ("counter", "gauge", "histogram")


class _Family:
    __slots__ = ("name", "type", "help", "label_names", "samples")

    def __init__(
        self, name: str, type_: str, help_: str, label_names: tuple[str, ...]
    ) -> None:
        self.name = name
        self.type = type_
        self.help = help_
        self.label_names = label_names
        self.samples: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}


class MetricsRegistry:
    """Get-or-create metric store with deterministic exports.

    Families are keyed by metric name; samples within a family by their
    label values.  A metric's type and label names are fixed by its
    first registration — conflicting re-registration raises, which
    catches typos that would otherwise split a counter in two.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # Get-or-create accessors
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        """The counter sample for ``name`` and ``labels``."""
        sample = self._sample(name, "counter", help, labels, None)
        assert isinstance(sample, Counter)
        return sample

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        """The gauge sample for ``name`` and ``labels``."""
        sample = self._sample(name, "gauge", help, labels, None)
        assert isinstance(sample, Gauge)
        return sample

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        """The histogram sample for ``name`` and ``labels``."""
        sample = self._sample(name, "histogram", help, labels, buckets)
        assert isinstance(sample, Histogram)
        return sample

    def inc(self, name: str, amount: float = 1.0, **labels: object) -> None:
        """Shortcut: increment the counter ``name`` by ``amount``."""
        self.counter(name, **labels).inc(amount)

    def _sample(
        self,
        name: str,
        type_: str,
        help_: str,
        labels: Mapping[str, object],
        buckets: Iterable[float] | None,
    ) -> Counter | Gauge | Histogram:
        family = self._families.get(name)
        label_names = tuple(sorted(labels))
        if family is None:
            _check_name(name)
            for label in label_names:
                if not _LABEL_RE.match(label):
                    raise ValueError(f"invalid label name {label!r}")
            family = _Family(name, type_, help_, label_names)
            self._families[name] = family
        else:
            if family.type != type_:
                raise ValueError(
                    f"metric {name!r} already registered as {family.type}"
                )
            if family.label_names != label_names:
                raise ValueError(
                    f"metric {name!r} uses labels {family.label_names}, "
                    f"got {label_names}"
                )
            if help_ and not family.help:
                family.help = help_
        key = tuple(str(labels[k]) for k in label_names)
        sample = family.samples.get(key)
        if sample is None:
            if type_ == "counter":
                sample = Counter()
            elif type_ == "gauge":
                sample = Gauge()
            else:
                sample = Histogram(
                    buckets if buckets is not None else DEFAULT_BUCKETS
                )
            family.samples[key] = sample
        return sample

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def value(self, name: str, **labels: object) -> float:
        """Current value of a counter/gauge (0.0 when never written)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        key = tuple(
            str(labels[k]) for k in family.label_names if k in labels
        )
        if len(key) != len(family.label_names):
            raise ValueError(
                f"metric {name!r} needs labels {family.label_names}"
            )
        sample = family.samples.get(key)
        if sample is None or isinstance(sample, Histogram):
            return 0.0
        return sample.value

    def names(self) -> list[str]:
        """Registered family names, sorted."""
        return sorted(self._families)

    def totals(self) -> dict[str, float]:
        """Per-family counter totals, summed over every label set.

        Only counter families appear (gauges can move both ways and
        histograms are multi-valued, so a single total would mislead);
        the result is a plain dict ready for a progress heartbeat.
        """
        out: dict[str, float] = {}
        for name in sorted(self._families):
            family = self._families[name]
            if family.type != "counter":
                continue
            out[name] = sum(
                sample.value  # type: ignore[union-attr]
                for sample in family.samples.values()
            )
        return out

    # ------------------------------------------------------------------
    # Merging (sharded collection)
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry | Mapping[str, object]") -> None:
        """Fold another registry (or a snapshot dict) into this one.

        The merge semantics per metric type:

        * **counters** sum — chunked parallel collection totals exactly
          what a serial run would have counted;
        * **gauges** take the incoming value (labeled last-writer per
          shard), so merge order matters for them — callers that need a
          deterministic merged gauge must merge shards in a fixed order;
        * **histograms** add per-bucket counts, sums, and totals (the
          bucket bounds must agree).

        Type or label-name conflicts raise, exactly as conflicting
        re-registration does.  Help text follows first-registration-wins,
        so pre-registering families in the parent pins the merged help.
        """
        if not isinstance(other, MetricsRegistry):
            other = MetricsRegistry.from_snapshot(other)
        for name in sorted(other._families):
            family = other._families[name]
            for key in sorted(family.samples):
                sample = family.samples[key]
                labels = dict(zip(family.label_names, key))
                if isinstance(sample, Counter):
                    self.counter(name, family.help, **labels).inc(
                        sample.value
                    )
                elif isinstance(sample, Gauge):
                    self.gauge(name, family.help, **labels).set(sample.value)
                else:
                    mine = self.histogram(
                        name, family.help, buckets=sample.bounds, **labels
                    )
                    mine.merge_from(sample)

    @classmethod
    def from_snapshot(
        cls, snapshot: Mapping[str, object]
    ) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` dict.

        The snapshot's cumulative histogram buckets are differenced back
        into per-bucket counts (the ``+Inf`` bucket is ``count`` minus
        the last cumulative value), so
        ``MetricsRegistry.from_snapshot(r.snapshot()).snapshot()`` is
        byte-for-byte ``r.snapshot()`` — the roundtrip that lets worker
        processes ship registries across a process boundary.
        """
        if snapshot.get("schema") != REGISTRY_SCHEMA:
            raise ValueError(
                f"snapshot schema {snapshot.get('schema')!r} != "
                f"{REGISTRY_SCHEMA!r}"
            )
        registry = cls()
        metrics = snapshot.get("metrics")
        if not isinstance(metrics, list):
            raise ValueError("snapshot `metrics` must be a list")
        for family in metrics:
            name = family["name"]
            type_ = family["type"]
            help_ = family.get("help", "")
            if type_ not in _TYPES:
                raise ValueError(f"metric {name!r}: unknown type {type_!r}")
            for entry in family["samples"]:
                labels = dict(entry["labels"])
                if type_ == "counter":
                    registry.counter(name, help_, **labels).inc(
                        float(entry["value"])
                    )
                elif type_ == "gauge":
                    registry.gauge(name, help_, **labels).set(
                        float(entry["value"])
                    )
                else:
                    buckets = [
                        (float(bound), int(cum))
                        for bound, cum in entry["buckets"]
                    ]
                    sample = registry.histogram(
                        name,
                        help_,
                        buckets=[bound for bound, _ in buckets],
                        **labels,
                    )
                    previous = 0
                    for index, (_bound, cum) in enumerate(buckets):
                        sample.counts[index] += cum - previous
                        previous = cum
                    sample.counts[-1] += int(entry["count"]) - previous
                    sample.sum += float(entry["sum"])
                    sample.count += int(entry["count"])
        return registry

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """The registry as a schema-versioned, deterministic dict."""
        metrics: list[dict[str, object]] = []
        for name in sorted(self._families):
            family = self._families[name]
            samples: list[dict[str, object]] = []
            for key in sorted(family.samples):
                sample = family.samples[key]
                labels = dict(zip(family.label_names, key))
                if isinstance(sample, Histogram):
                    samples.append(
                        {
                            "labels": labels,
                            "buckets": [
                                [bound, cum]
                                for bound, cum in zip(
                                    sample.bounds, sample.cumulative()
                                )
                            ],
                            "sum": sample.sum,
                            "count": sample.count,
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": sample.value})
            metrics.append(
                {
                    "name": family.name,
                    "type": family.type,
                    "help": family.help,
                    "samples": samples,
                }
            )
        return {"schema": REGISTRY_SCHEMA, "metrics": metrics}

    def to_json(self, indent: int | None = 2) -> str:
        """The snapshot as canonical JSON text."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.type}")
            for key in sorted(family.samples):
                sample = family.samples[key]
                pairs = list(zip(family.label_names, key))
                if isinstance(sample, Histogram):
                    cumulative = sample.cumulative()
                    for bound, cum in zip(sample.bounds, cumulative):
                        bucket_pairs = pairs + [("le", _format_value(bound))]
                        lines.append(
                            f"{name}_bucket{_render_labels(bucket_pairs)} {cum}"
                        )
                    inf_pairs = pairs + [("le", "+Inf")]
                    lines.append(
                        f"{name}_bucket{_render_labels(inf_pairs)} "
                        f"{cumulative[-1]}"
                    )
                    lines.append(
                        f"{name}_sum{_render_labels(pairs)} "
                        f"{_format_value(sample.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(pairs)} {sample.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_render_labels(pairs)} "
                        f"{_format_value(sample.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _render_labels(pairs: list[tuple[str, str]]) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + body + "}"
