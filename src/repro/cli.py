"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the library's main entry points:

* ``topologies`` — list the embedded PoP-level maps;
* ``run`` — one experiment (architectures x metrics table);
* ``sweep`` — a single-parameter sensitivity sweep of the
  ICN-NR-over-EDGE gap;
* ``treeopt`` — the Section 2.2 tree model (Figure 2 data).
"""

from __future__ import annotations

import argparse
import sys

from .analysis import format_series, format_table, sweep_gap
from .core import (
    BASELINE_ARCHITECTURES,
    EDGE,
    ICN_NR,
    ExperimentConfig,
    run_experiment,
)
from .topology import TOPOLOGY_NAMES, topology
from .treeopt import TreeModel, expected_hops, fraction_served_per_level

_SWEEPABLE = {
    "alpha": ("alpha", float),
    "skew": ("spatial_skew", float),
    "budget": ("budget_fraction", float),
}


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topology", default="abilene",
                        choices=TOPOLOGY_NAMES)
    parser.add_argument("--requests", type=int, default=100_000)
    parser.add_argument("--objects", type=int, default=1_000)
    parser.add_argument("--alpha", type=float, default=1.04)
    parser.add_argument("--skew", type=float, default=0.0)
    parser.add_argument("--budget", type=float, default=0.05,
                        help="per-router cache budget as a fraction of "
                             "the catalog (paper baseline: 0.05)")
    parser.add_argument("--budget-split", default="proportional",
                        choices=("proportional", "uniform"))
    parser.add_argument("--policy", default="lru",
                        choices=("lru", "lfu", "fifo"))
    parser.add_argument("--arity", type=int, default=2)
    parser.add_argument("--depth", type=int, default=5)
    parser.add_argument("--seed", type=int, default=2013)


def _config_from(args: argparse.Namespace, **overrides) -> ExperimentConfig:
    params = dict(
        topology=args.topology,
        num_requests=args.requests,
        num_objects=args.objects,
        alpha=args.alpha,
        spatial_skew=args.skew,
        budget_fraction=args.budget,
        budget_split=args.budget_split,
        policy=args.policy,
        arity=args.arity,
        tree_depth=args.depth,
        warmup_fraction=0.2,
        seed=args.seed,
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def _cmd_topologies(args: argparse.Namespace) -> int:
    rows = []
    for name in TOPOLOGY_NAMES:
        topo = topology(name)
        rows.append([
            name, topo.num_pops, topo.num_edges,
            f"{topo.total_population:,}",
        ])
    print(format_table(["topology", "PoPs", "core links", "population"],
                       rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = _config_from(args)
    outcome = run_experiment(config, BASELINE_ARCHITECTURES)
    rows = [
        [name, imp.latency, imp.congestion, imp.origin_load]
        for name, imp in outcome.improvements.items()
    ]
    print(format_table(
        ["architecture", "latency +%", "congestion +%", "origin load +%"],
        rows,
        title=f"Improvements over no caching on {config.topology!r} "
              f"({config.num_requests:,} requests, "
              f"{config.num_objects:,} objects)",
    ))
    gap = outcome.gap("ICN-NR", "EDGE")
    print(f"\nICN-NR over EDGE: latency {gap.latency:+.2f}%, congestion "
          f"{gap.congestion:+.2f}%, origin load {gap.origin_load:+.2f}%")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    field, cast = _SWEEPABLE[args.parameter]
    values = [cast(v) for v in args.values]
    sweep = sweep_gap(
        args.parameter,
        values,
        lambda v: _config_from(args, **{field: v}),
        ICN_NR,
        EDGE,
    )
    print(format_series(
        args.parameter, sweep.values, sweep.gaps,
        title=f"ICN-NR gain over EDGE (%) vs {args.parameter} on "
              f"{args.topology!r}",
    ))
    return 0


def _cmd_treeopt(args: argparse.Namespace) -> int:
    series = {}
    for alpha in args.alphas:
        model = TreeModel(levels=args.levels, cache_size=args.cache_size,
                          num_objects=args.objects, alpha=alpha)
        series[f"alpha={alpha}"] = list(fraction_served_per_level(model))
        print(f"alpha={alpha}: expected hops "
              f"{expected_hops(model):.2f}")
    print(format_series(
        "level", list(range(1, args.levels + 1)), series,
        title="Fraction of requests served per tree level "
              "(optimal placement)",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Less Pain, Most of the Gain: "
                    "Incrementally Deployable ICN' (SIGCOMM 2013)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("topologies", help="list embedded PoP maps")

    run_parser = sub.add_parser("run", help="run one experiment")
    _add_config_arguments(run_parser)

    sweep_parser = sub.add_parser("sweep", help="sensitivity sweep")
    sweep_parser.add_argument("parameter", choices=sorted(_SWEEPABLE))
    sweep_parser.add_argument("values", nargs="+")
    _add_config_arguments(sweep_parser)

    tree_parser = sub.add_parser("treeopt", help="Section 2.2 tree model")
    tree_parser.add_argument("--levels", type=int, default=6)
    tree_parser.add_argument("--cache-size", type=int, default=60)
    tree_parser.add_argument("--objects", type=int, default=1000)
    tree_parser.add_argument("--alphas", type=float, nargs="+",
                             default=[0.7, 1.1, 1.5])
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "topologies": _cmd_topologies,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "treeopt": _cmd_treeopt,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
