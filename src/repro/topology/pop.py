"""PoP-level topology container.

A :class:`PopTopology` is the *core network* of the paper: a connected
graph of points of presence, each annotated with the population of its
metro region.  Request volume and origin-server assignment are both
proportional to these populations (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx


@dataclass(frozen=True)
class Pop:
    """A point of presence in the core network."""

    index: int
    name: str
    population: int

    def __post_init__(self) -> None:
        if self.population <= 0:
            raise ValueError(f"PoP {self.name!r} must have positive population")


@dataclass(frozen=True)
class PopTopology:
    """An annotated, connected PoP-level graph.

    ``edges`` are undirected pairs of PoP indices.  The topology must be
    connected so that every request can reach its origin.
    """

    name: str
    pops: tuple[Pop, ...]
    edges: tuple[tuple[int, int], ...]
    _adjacency: tuple[tuple[int, ...], ...] = field(
        init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        n = len(self.pops)
        if n == 0:
            raise ValueError("topology must have at least one PoP")
        for i, pop in enumerate(self.pops):
            if pop.index != i:
                raise ValueError(f"PoP at position {i} has index {pop.index}")
        seen: set[tuple[int, int]] = set()
        adjacency: list[list[int]] = [[] for _ in range(n)]
        for a, b in self.edges:
            if not (0 <= a < n and 0 <= b < n):
                raise ValueError(f"edge ({a}, {b}) references unknown PoP")
            if a == b:
                raise ValueError(f"self-loop on PoP {a}")
            key = (min(a, b), max(a, b))
            if key in seen:
                raise ValueError(f"duplicate edge {key}")
            seen.add(key)
            adjacency[a].append(b)
            adjacency[b].append(a)
        object.__setattr__(
            self, "_adjacency", tuple(tuple(sorted(nbrs)) for nbrs in adjacency)
        )
        if n > 1 and not self._is_connected():
            raise ValueError(f"topology {self.name!r} is not connected")

    @property
    def num_pops(self) -> int:
        """Number of PoPs."""
        return len(self.pops)

    @property
    def num_edges(self) -> int:
        """Number of undirected core links."""
        return len(self.edges)

    @property
    def populations(self) -> tuple[int, ...]:
        """Metro population of each PoP, in index order."""
        return tuple(pop.population for pop in self.pops)

    @property
    def total_population(self) -> int:
        """Sum of all metro populations."""
        return sum(pop.population for pop in self.pops)

    def neighbors(self, pop: int) -> tuple[int, ...]:
        """Indices of PoPs adjacent to ``pop``."""
        return self._adjacency[pop]

    def population_weights(self) -> list[float]:
        """Per-PoP population shares (sums to 1)."""
        total = self.total_population
        return [pop.population / total for pop in self.pops]

    def to_networkx(self) -> nx.Graph:
        """Export as a ``networkx.Graph`` with population node attributes."""
        graph = nx.Graph(name=self.name)
        for pop in self.pops:
            graph.add_node(pop.index, name=pop.name, population=pop.population)
        graph.add_edges_from(self.edges)
        return graph

    def _is_connected(self) -> bool:
        seen = {0}
        stack = [0]
        while stack:
            node = stack.pop()
            for nbr in self._adjacency[node]:
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
        return len(seen) == len(self.pops)
