"""Composite router-level network: a PoP map with an access tree per PoP.

Global node ids are ``pop_index * tree.size + local_index`` where
``local_index`` is the BFS index inside that PoP's access tree; the tree
root (local 0) *is* the PoP node, which doubles as the origin server for
the objects that PoP owns (Section 4.1).

Links get dense integer ids so per-link congestion counters are plain
arrays:

* the tree link above node ``g`` (``g`` not a tree root) has id ``g``;
* core link number ``e`` has id ``num_nodes + e``.

All shortest paths are precomputed: core-network APSP by BFS (hop
metric, as in the paper) and in-tree paths by k-ary index arithmetic, so
the simulator never searches the graph per request.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .access_tree import AccessTree
from .pop import PopTopology


@dataclass(frozen=True)
class HopCosts:
    """Per-hop latency costs, precomputed for one latency model.

    ``tree_to_root[local]`` is the total cost from tree-local node
    ``local`` up to its PoP root; ``core_hop`` is the cost of one core
    link.  The default unit model makes every hop cost 1.
    """

    tree_to_root: tuple[float, ...]
    core_hop: float


class Network:
    """Router-level network with O(1) distance and path oracles."""

    def __init__(self, pop_topology: PopTopology, tree: AccessTree):
        self.pop_topology = pop_topology
        self.tree = tree
        self.num_pops = pop_topology.num_pops
        self.tree_size = tree.size
        self.num_nodes = self.num_pops * self.tree_size
        self.num_core_links = pop_topology.num_edges
        self.num_links = self.num_nodes + self.num_core_links

        self._core_edge_index = {
            (min(a, b), max(a, b)): e for e, (a, b) in enumerate(pop_topology.edges)
        }
        self._core_dist, self._core_next = self._all_pairs_bfs()
        self._core_paths = self._materialize_core_paths()
        self._core_path_links = self._materialize_core_path_links()
        # Tree-local path-to-root chains (node included, root included).
        self._chain = tuple(
            tuple(tree.path_to_root(local)) for local in range(tree.size)
        )

    # ------------------------------------------------------------------
    # Node id helpers
    # ------------------------------------------------------------------
    def gid(self, pop: int, local: int) -> int:
        """Global node id for tree-local node ``local`` of PoP ``pop``."""
        return pop * self.tree_size + local

    def pop_of(self, node: int) -> int:
        """PoP index owning global node ``node``."""
        return node // self.tree_size

    def local_of(self, node: int) -> int:
        """Tree-local index of global node ``node``."""
        return node % self.tree_size

    def root_gid(self, pop: int) -> int:
        """Global id of PoP ``pop``'s tree root (the PoP node itself)."""
        return pop * self.tree_size

    def depth_of(self, node: int) -> int:
        """Tree depth of global node ``node`` (PoP roots are depth 0)."""
        return self.tree.depth_of(node % self.tree_size)

    def leaf_gids(self, pop: int) -> range:
        """Global ids of the access-tree leaves of PoP ``pop``."""
        base = pop * self.tree_size
        leaves = self.tree.leaves
        return range(base + leaves.start, base + leaves.stop)

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def core_distance(self, pop_a: int, pop_b: int) -> int:
        """Hop distance between two PoPs on the core network."""
        return self._core_dist[pop_a][pop_b]

    def core_path(self, pop_a: int, pop_b: int) -> tuple[int, ...]:
        """PoP sequence of the shortest core path, inclusive of endpoints."""
        return self._core_paths[pop_a][pop_b]

    def core_path_links(self, pop_a: int, pop_b: int) -> tuple[int, ...]:
        """Link ids of the shortest core path between two PoPs."""
        return self._core_path_links[pop_a][pop_b]

    def distance(self, a: int, b: int) -> int:
        """Hop distance between any two global nodes.

        Inside one PoP this is the tree distance; across PoPs every path
        must climb to the local root, cross the core, and descend.
        """
        pop_a, pop_b = a // self.tree_size, b // self.tree_size
        if pop_a == pop_b:
            return self.tree.distance(a % self.tree_size, b % self.tree_size)
        return (
            self.tree.depth_of(a % self.tree_size)
            + self._core_dist[pop_a][pop_b]
            + self.tree.depth_of(b % self.tree_size)
        )

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def chain_to_root(self, node: int) -> list[int]:
        """Global node sequence from ``node`` up to its PoP root, inclusive."""
        base = (node // self.tree_size) * self.tree_size
        return [base + local for local in self._chain[node % self.tree_size]]

    def path_nodes(self, a: int, b: int) -> list[int]:
        """Global node sequence of the shortest path from ``a`` to ``b``."""
        pop_a, pop_b = a // self.tree_size, b // self.tree_size
        if pop_a == pop_b:
            base = pop_a * self.tree_size
            return [
                base + local
                for local in self.tree.path(a % self.tree_size, b % self.tree_size)
            ]
        up = self.chain_to_root(a)
        middle = [
            pop * self.tree_size for pop in self._core_paths[pop_a][pop_b][1:-1]
        ]
        down = list(reversed(self.chain_to_root(b)))
        return up + middle + down

    def path_links(self, a: int, b: int) -> list[int]:
        """Link ids along the shortest path from ``a`` to ``b``.

        Tree links are identified by their child endpoint's global id;
        core links by ``num_nodes + edge_index``.
        """
        pop_a, pop_b = a // self.tree_size, b // self.tree_size
        if pop_a == pop_b:
            base = pop_a * self.tree_size
            local_a, local_b = a % self.tree_size, b % self.tree_size
            lca = self.tree.lca(local_a, local_b)
            links = []
            node = local_a
            while node != lca:
                links.append(base + node)
                node = (node - 1) // self.tree.arity
            node = local_b
            while node != lca:
                links.append(base + node)
                node = (node - 1) // self.tree.arity
            return links
        links = [
            (pop_a * self.tree_size) + local
            for local in self._chain[a % self.tree_size][:-1]
        ]
        links.extend(self._core_path_links[pop_a][pop_b])
        links.extend(
            (pop_b * self.tree_size) + local
            for local in self._chain[b % self.tree_size][:-1]
        )
        return links

    def path_cost(self, a: int, b: int, costs: HopCosts) -> float:
        """Latency of the shortest ``a``–``b`` path under a hop-cost model."""
        pop_a, pop_b = a // self.tree_size, b // self.tree_size
        to_root = costs.tree_to_root
        if pop_a == pop_b:
            local_a, local_b = a % self.tree_size, b % self.tree_size
            lca = self.tree.lca(local_a, local_b)
            return (to_root[local_a] - to_root[lca]) + (to_root[local_b] - to_root[lca])
        return (
            to_root[a % self.tree_size]
            + self._core_dist[pop_a][pop_b] * costs.core_hop
            + to_root[b % self.tree_size]
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _all_pairs_bfs(self) -> tuple[list[list[int]], list[list[int]]]:
        n = self.num_pops
        dist = [[-1] * n for _ in range(n)]
        # prev[s][v]: predecessor of v on the shortest path from s.
        prev = [[-1] * n for _ in range(n)]
        for source in range(n):
            dist[source][source] = 0
            queue = deque([source])
            while queue:
                node = queue.popleft()
                for nbr in self.pop_topology.neighbors(node):
                    if dist[source][nbr] == -1:
                        dist[source][nbr] = dist[source][node] + 1
                        prev[source][nbr] = node
                        queue.append(nbr)
        return dist, prev

    def _materialize_core_paths(self) -> list[list[tuple[int, ...]]]:
        n = self.num_pops
        paths: list[list[tuple[int, ...]]] = [[() for _ in range(n)] for _ in range(n)]
        for src in range(n):
            for dst in range(n):
                node = dst
                path = [node]
                while node != src:
                    node = self._core_next[src][node]
                    path.append(node)
                path.reverse()
                paths[src][dst] = tuple(path)
        return paths

    def _materialize_core_path_links(self) -> list[list[tuple[int, ...]]]:
        n = self.num_pops
        links: list[list[tuple[int, ...]]] = [[() for _ in range(n)] for _ in range(n)]
        for src in range(n):
            for dst in range(n):
                path = self._core_paths[src][dst]
                links[src][dst] = tuple(
                    self.num_nodes
                    + self._core_edge_index[(min(u, v), max(u, v))]
                    for u, v in zip(path, path[1:])
                )
        return links

    def unit_hop_costs(self) -> HopCosts:
        """The paper's default model: every hop costs 1."""
        return HopCosts(
            tree_to_root=tuple(float(d) for d in map(self.tree.depth_of,
                                                     range(self.tree_size))),
            core_hop=1.0,
        )
