"""Synthetic PoP-level topology generators.

Rocketfuel's router-level ISP maps are not redistributable, so the six
commercial ISP topologies in :mod:`repro.topology.datasets` are generated
here with a deterministic preferential-attachment process that yields the
skewed degree distributions Rocketfuel measured (a few highly connected
hub PoPs, many low-degree stubs).  Populations follow a Zipf-like
city-size law, matching the paper's population-proportional demand model.
"""

from __future__ import annotations

import numpy as np

from .pop import Pop, PopTopology


def preferential_attachment_edges(
    num_nodes: int, links_per_node: int, rng: np.random.Generator
) -> list[tuple[int, int]]:
    """Barabási–Albert style edge list with an explicit RNG.

    Node 0..links_per_node form an initial clique; every later node
    attaches to ``links_per_node`` distinct existing nodes chosen with
    probability proportional to their current degree.
    """
    if num_nodes < links_per_node + 1:
        raise ValueError("need num_nodes > links_per_node")
    edges: list[tuple[int, int]] = []
    # Degree-weighted target pool: each endpoint appearance is one entry.
    pool: list[int] = []
    clique = range(links_per_node + 1)
    for a in clique:
        for b in clique:
            if a < b:
                edges.append((a, b))
                pool.extend((a, b))
    for node in range(links_per_node + 1, num_nodes):
        targets: set[int] = set()
        while len(targets) < links_per_node:
            targets.add(pool[int(rng.integers(len(pool)))])
        for target in sorted(targets):
            edges.append((target, node))
            pool.extend((target, node))
    return edges


def zipf_city_populations(
    num_cities: int, largest: int, exponent: float = 1.0
) -> list[int]:
    """Deterministic Zipf's-law city sizes: ``largest / rank**exponent``."""
    if num_cities < 1 or largest < num_cities:
        raise ValueError("need num_cities >= 1 and largest >= num_cities")
    return [max(1, int(largest / (rank**exponent))) for rank in range(1, num_cities + 1)]


def synthetic_isp(
    name: str,
    city_names: list[str],
    seed: int,
    links_per_node: int = 2,
    largest_population: int = 12_000_000,
) -> PopTopology:
    """Build a named synthetic ISP PoP map.

    The most-populous city is placed at the best-connected position
    (node 0 of the preferential-attachment process), mimicking real ISPs
    whose hub PoPs sit in the largest metros.
    """
    rng = np.random.default_rng(seed)
    n = len(city_names)
    populations = zipf_city_populations(n, largest_population)
    pops = tuple(
        Pop(index=i, name=city, population=populations[i])
        for i, city in enumerate(city_names)
    )
    edges = tuple(preferential_attachment_edges(n, links_per_node, rng))
    return PopTopology(name=name, pops=pops, edges=edges)
