"""Complete k-ary access trees.

The paper builds a router-level topology by rooting a complete k-ary tree
(the *access tree*) at every PoP of a PoP-level map (Section 4.1).  This
module provides the index arithmetic for such trees: nodes are numbered
0..size-1 in breadth-first order with the root at index 0, so parent,
children, depth, ancestors, and pairwise tree distance are all O(depth)
integer computations with no graph search.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AccessTree:
    """A complete ``arity``-ary tree of the given ``depth``.

    ``depth`` is the number of edges from the root to a leaf; a tree of
    depth 0 is a single node.  Nodes are numbered in BFS order: the root
    is 0 and the children of node ``i`` are ``arity * i + 1`` through
    ``arity * i + arity``.
    """

    arity: int
    depth: int
    _depth_of: tuple[int, ...] = field(init=False, repr=False, compare=False)
    _level_start: tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.arity < 1:
            raise ValueError(f"arity must be >= 1, got {self.arity}")
        if self.depth < 0:
            raise ValueError(f"depth must be >= 0, got {self.depth}")
        level_start = [0]
        count = 1
        total = 0
        for _ in range(self.depth + 1):
            total += count
            level_start.append(total)
            count *= self.arity
        depth_of: list[int] = []
        for d in range(self.depth + 1):
            depth_of.extend([d] * (level_start[d + 1] - level_start[d]))
        object.__setattr__(self, "_level_start", tuple(level_start))
        object.__setattr__(self, "_depth_of", tuple(depth_of))

    @property
    def size(self) -> int:
        """Total number of nodes in the tree."""
        return self._level_start[self.depth + 1]

    @property
    def num_leaves(self) -> int:
        """Number of leaf nodes (nodes at maximum depth)."""
        return self._level_start[self.depth + 1] - self._level_start[self.depth]

    @property
    def leaves(self) -> range:
        """Indices of the leaf nodes."""
        return range(self._level_start[self.depth], self.size)

    def level_nodes(self, depth: int) -> range:
        """Indices of all nodes at the given depth (0 = root)."""
        self._check_depth(depth)
        return range(self._level_start[depth], self._level_start[depth + 1])

    def depth_of(self, node: int) -> int:
        """Depth of ``node`` (root is 0)."""
        self._check_node(node)
        return self._depth_of[node]

    def parent(self, node: int) -> int:
        """Parent index of ``node``; raises for the root."""
        self._check_node(node)
        if node == 0:
            raise ValueError("the root has no parent")
        return (node - 1) // self.arity

    def children(self, node: int) -> range:
        """Child indices of ``node`` (empty for leaves)."""
        self._check_node(node)
        if self._depth_of[node] == self.depth:
            return range(0, 0)
        first = self.arity * node + 1
        return range(first, first + self.arity)

    def siblings(self, node: int) -> list[int]:
        """All other children of ``node``'s parent (empty for the root)."""
        self._check_node(node)
        if node == 0:
            return []
        parent = (node - 1) // self.arity
        first = self.arity * parent + 1
        return [c for c in range(first, first + self.arity) if c != node]

    def is_leaf(self, node: int) -> bool:
        """Whether ``node`` is at maximum depth."""
        self._check_node(node)
        return self._depth_of[node] == self.depth

    def ancestors(self, node: int) -> list[int]:
        """Path from ``node``'s parent up to and including the root."""
        self._check_node(node)
        path = []
        while node != 0:
            node = (node - 1) // self.arity
            path.append(node)
        return path

    def path_to_root(self, node: int) -> list[int]:
        """Path from ``node`` (inclusive) up to and including the root."""
        return [node, *self.ancestors(node)]

    def lca(self, a: int, b: int) -> int:
        """Lowest common ancestor of nodes ``a`` and ``b``."""
        self._check_node(a)
        self._check_node(b)
        while self._depth_of[a] > self._depth_of[b]:
            a = (a - 1) // self.arity
        while self._depth_of[b] > self._depth_of[a]:
            b = (b - 1) // self.arity
        while a != b:
            a = (a - 1) // self.arity
            b = (b - 1) // self.arity
        return a

    def distance(self, a: int, b: int) -> int:
        """Number of tree edges between nodes ``a`` and ``b``."""
        lca = self.lca(a, b)
        lca_depth = self._depth_of[lca]
        return (self._depth_of[a] - lca_depth) + (self._depth_of[b] - lca_depth)

    def path(self, a: int, b: int) -> list[int]:
        """Node sequence from ``a`` to ``b`` along tree edges (inclusive)."""
        lca = self.lca(a, b)
        up: list[int] = []
        node = a
        while node != lca:
            up.append(node)
            node = (node - 1) // self.arity
        down: list[int] = []
        node = b
        while node != lca:
            down.append(node)
            node = (node - 1) // self.arity
        return [*up, lca, *reversed(down)]

    def subtree_leaves(self, node: int) -> range:
        """Leaf indices in the subtree rooted at ``node``."""
        self._check_node(node)
        lo, hi = node, node
        for _ in range(self.depth - self._depth_of[node]):
            lo = self.arity * lo + 1
            hi = self.arity * hi + self.arity
        return range(lo, hi + 1)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.size:
            raise ValueError(f"node {node} out of range [0, {self.size})")

    def _check_depth(self, depth: int) -> None:
        if not 0 <= depth <= self.depth:
            raise ValueError(f"depth {depth} out of range [0, {self.depth}]")


def arity_for_leaf_count(leaves: int, arity: int) -> int:
    """Tree depth such that a complete ``arity``-ary tree has ``leaves`` leaves.

    Used by the Table 4 arity experiment, which changes arity "while
    adjusting the height of the access trees to keep the total number of
    leaves per tree fixed".  Raises ``ValueError`` if ``leaves`` is not an
    exact power of ``arity``.
    """
    if leaves < 1 or arity < 2:
        raise ValueError("need leaves >= 1 and arity >= 2")
    depth = 0
    count = 1
    while count < leaves:
        count *= arity
        depth += 1
    if count != leaves:
        raise ValueError(f"{leaves} is not a power of {arity}")
    return depth
