"""Topology substrate: PoP maps, access trees, and the composite network.

See Section 4.1 of the paper: each PoP of a backbone map is the root of a
complete k-ary access tree; requests arrive at tree leaves and PoP roots
double as origin servers.
"""

from .access_tree import AccessTree, arity_for_leaf_count
from .datasets import TOPOLOGY_NAMES, all_topologies, topology
from .generators import (
    preferential_attachment_edges,
    synthetic_isp,
    zipf_city_populations,
)
from .network import HopCosts, Network
from .pop import Pop, PopTopology

__all__ = [
    "AccessTree",
    "HopCosts",
    "Network",
    "Pop",
    "PopTopology",
    "TOPOLOGY_NAMES",
    "all_topologies",
    "arity_for_leaf_count",
    "preferential_attachment_edges",
    "synthetic_isp",
    "topology",
    "zipf_city_populations",
]
