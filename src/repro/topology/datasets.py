"""The eight PoP-level topologies used in the paper's evaluation.

Figures 6 and 7 run over Abilene, Geant, Telstra, Sprint, Verio, Tiscali,
Level3, and AT&T.  Abilene and Geant are the published research-backbone
PoP maps with rough 2010 metro populations.  The six commercial ISP maps
come from Rocketfuel, which is not redistributable, so we substitute
deterministic Rocketfuel-style synthetic maps (see
:mod:`repro.topology.generators` and DESIGN.md): same regions, realistic
PoP counts and hub-and-stub degree structure, Zipf city populations, and
AT&T as the largest topology — the properties the paper's relative
comparisons actually depend on.
"""

from __future__ import annotations

from .generators import synthetic_isp
from .pop import Pop, PopTopology

#: Canonical evaluation order, matching the x-axis of Figures 6 and 7.
TOPOLOGY_NAMES: tuple[str, ...] = (
    "abilene",
    "geant",
    "telstra",
    "sprint",
    "verio",
    "tiscali",
    "level3",
    "att",
)

_ABILENE_POPS = (
    ("Seattle", 3_440_000),
    ("Sunnyvale", 1_840_000),
    ("Los Angeles", 12_830_000),
    ("Denver", 2_540_000),
    ("Kansas City", 2_040_000),
    ("Houston", 5_950_000),
    ("Chicago", 9_460_000),
    ("Indianapolis", 1_760_000),
    ("Atlanta", 5_280_000),
    ("Washington DC", 5_580_000),
    ("New York", 18_900_000),
)

_ABILENE_EDGES = (
    ("Seattle", "Sunnyvale"),
    ("Seattle", "Denver"),
    ("Sunnyvale", "Los Angeles"),
    ("Sunnyvale", "Denver"),
    ("Los Angeles", "Houston"),
    ("Denver", "Kansas City"),
    ("Kansas City", "Houston"),
    ("Kansas City", "Indianapolis"),
    ("Houston", "Atlanta"),
    ("Indianapolis", "Chicago"),
    ("Indianapolis", "Atlanta"),
    ("Chicago", "New York"),
    ("Atlanta", "Washington DC"),
    ("New York", "Washington DC"),
)

_GEANT_POPS = (
    ("London", 13_600_000),
    ("Paris", 12_200_000),
    ("Madrid", 6_500_000),
    ("Milan", 7_400_000),
    ("Geneva", 1_200_000),
    ("Frankfurt", 5_600_000),
    ("Amsterdam", 2_400_000),
    ("Brussels", 2_600_000),
    ("Vienna", 2_800_000),
    ("Prague", 2_200_000),
    ("Warsaw", 3_100_000),
    ("Budapest", 3_000_000),
    ("Zagreb", 1_100_000),
    ("Bucharest", 2_300_000),
    ("Sofia", 1_500_000),
    ("Athens", 3_800_000),
    ("Lisbon", 2_800_000),
    ("Dublin", 1_900_000),
    ("Copenhagen", 2_000_000),
    ("Stockholm", 2_200_000),
    ("Helsinki", 1_500_000),
    ("Tallinn", 600_000),
)

_GEANT_EDGES = (
    ("London", "Paris"),
    ("London", "Amsterdam"),
    ("London", "Dublin"),
    ("London", "Madrid"),
    ("Paris", "Geneva"),
    ("Paris", "Madrid"),
    ("Paris", "Brussels"),
    ("Madrid", "Lisbon"),
    ("Milan", "Geneva"),
    ("Milan", "Vienna"),
    ("Milan", "Athens"),
    ("Geneva", "Frankfurt"),
    ("Frankfurt", "Amsterdam"),
    ("Frankfurt", "Prague"),
    ("Frankfurt", "Copenhagen"),
    ("Frankfurt", "Vienna"),
    ("Amsterdam", "Brussels"),
    ("Vienna", "Budapest"),
    ("Vienna", "Zagreb"),
    ("Prague", "Warsaw"),
    ("Warsaw", "Stockholm"),
    ("Budapest", "Bucharest"),
    ("Zagreb", "Sofia"),
    ("Bucharest", "Sofia"),
    ("Sofia", "Athens"),
    ("Copenhagen", "Stockholm"),
    ("Stockholm", "Helsinki"),
    ("Helsinki", "Tallinn"),
    ("Lisbon", "Dublin"),
)

_TELSTRA_CITIES = [
    "Sydney", "Melbourne", "Brisbane", "Perth", "Adelaide", "Gold Coast",
    "Newcastle", "Canberra", "Wollongong", "Hobart", "Geelong", "Townsville",
    "Cairns", "Darwin", "Toowoomba", "Ballarat", "Bendigo", "Launceston",
    "Mackay", "Rockhampton", "Bundaberg", "Coffs Harbour", "Wagga Wagga",
    "Albury", "Port Macquarie", "Tamworth", "Orange", "Dubbo",
]

_SPRINT_CITIES = [
    "New York", "Los Angeles", "Chicago", "Dallas", "Houston", "Washington DC",
    "Philadelphia", "Miami", "Atlanta", "Boston", "Phoenix", "San Francisco",
    "Riverside", "Detroit", "Seattle", "Minneapolis", "San Diego", "Tampa",
    "Denver", "Baltimore", "St Louis", "Charlotte", "Orlando", "San Antonio",
    "Portland", "Sacramento", "Pittsburgh", "Las Vegas", "Austin",
    "Cincinnati", "Kansas City", "Columbus",
]

_VERIO_CITIES = [
    "Tokyo", "San Jose", "Ashburn", "Dallas", "Chicago", "New York",
    "Los Angeles", "Seattle", "Denver", "Atlanta", "Miami", "Boston",
    "Osaka", "Singapore", "Hong Kong", "Sydney", "London", "Frankfurt",
    "Amsterdam", "Paris", "Toronto", "Phoenix", "Houston", "Portland",
    "Salt Lake City", "Minneapolis",
]

_TISCALI_CITIES = [
    "London", "Paris", "Madrid", "Milan", "Rome", "Berlin", "Frankfurt",
    "Amsterdam", "Brussels", "Vienna", "Munich", "Hamburg", "Barcelona",
    "Lisbon", "Zurich", "Geneva", "Prague", "Warsaw", "Stockholm",
    "Copenhagen", "Oslo", "Helsinki", "Dublin", "Budapest",
]

_LEVEL3_CITIES = [
    "New York", "London", "Los Angeles", "Chicago", "Dallas", "Washington DC",
    "San Jose", "Atlanta", "Denver", "Seattle", "Miami", "Boston",
    "Frankfurt", "Paris", "Amsterdam", "Houston", "Phoenix", "Detroit",
    "Philadelphia", "Minneapolis", "St Louis", "Tampa", "Portland",
    "San Diego", "Baltimore", "Charlotte", "Orlando", "Sacramento",
    "Las Vegas", "Austin", "Cleveland", "Pittsburgh", "Cincinnati",
    "Kansas City", "Nashville", "Indianapolis",
]

_ATT_CITIES = [
    "New York", "Los Angeles", "Chicago", "Dallas", "Houston", "Washington DC",
    "Philadelphia", "Miami", "Atlanta", "Boston", "Phoenix", "San Francisco",
    "Riverside", "Detroit", "Seattle", "Minneapolis", "San Diego", "Tampa",
    "Denver", "Baltimore", "St Louis", "Charlotte", "Orlando", "San Antonio",
    "Portland", "Sacramento", "Pittsburgh", "Las Vegas", "Austin",
    "Cincinnati", "Kansas City", "Columbus", "Indianapolis", "Cleveland",
    "Nashville", "Virginia Beach", "Providence", "Milwaukee", "Jacksonville",
    "Memphis", "Oklahoma City", "Louisville", "Hartford", "Richmond",
    "New Orleans", "Buffalo", "Raleigh", "Birmingham",
]


def _named_topology(
    name: str,
    pops: tuple[tuple[str, int], ...],
    edges: tuple[tuple[str, str], ...],
) -> PopTopology:
    index = {city: i for i, (city, _) in enumerate(pops)}
    return PopTopology(
        name=name,
        pops=tuple(
            Pop(index=i, name=city, population=population)
            for i, (city, population) in enumerate(pops)
        ),
        edges=tuple((index[a], index[b]) for a, b in edges),
    )


def topology(name: str) -> PopTopology:
    """Return one of the eight evaluation topologies by (lowercase) name."""
    key = name.lower()
    if key == "abilene":
        return _named_topology("abilene", _ABILENE_POPS, _ABILENE_EDGES)
    if key == "geant":
        return _named_topology("geant", _GEANT_POPS, _GEANT_EDGES)
    if key == "telstra":
        return synthetic_isp("telstra", _TELSTRA_CITIES, seed=1221,
                             largest_population=5_300_000)
    if key == "sprint":
        return synthetic_isp("sprint", _SPRINT_CITIES, seed=1239,
                             largest_population=18_900_000)
    if key == "verio":
        return synthetic_isp("verio", _VERIO_CITIES, seed=2914,
                             largest_population=13_500_000)
    if key == "tiscali":
        return synthetic_isp("tiscali", _TISCALI_CITIES, seed=3257,
                             largest_population=13_600_000)
    if key == "level3":
        return synthetic_isp("level3", _LEVEL3_CITIES, seed=3356,
                             largest_population=18_900_000)
    if key == "att":
        return synthetic_isp("att", _ATT_CITIES, seed=7018,
                             largest_population=18_900_000)
    raise KeyError(f"unknown topology {name!r}; choose from {TOPOLOGY_NAMES}")


def all_topologies() -> list[PopTopology]:
    """All eight evaluation topologies, in the paper's figure order."""
    return [topology(name) for name in TOPOLOGY_NAMES]
