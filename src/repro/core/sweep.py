"""Parallel design-space sweeps (Section 4's grid, at production scale).

The paper's evaluation is a grid — architectures x topologies x cache
budgets x Zipf parameters — and every point is an independent
:func:`~repro.core.experiment.run_experiment` call.  This module fans a
grid out over worker processes:

* each grid point is a :class:`SweepPoint` (a fully seeded
  :class:`ExperimentConfig` plus its architecture line-up and optional
  trace objects), so a point's result depends only on the point itself
  — chunked parallel execution is bit-identical to serial execution
  regardless of worker count;
* per-point seeds are derived with :func:`spawn_seeds` from one base
  seed via ``numpy.random.SeedSequence.spawn``, giving collision-free
  independent streams without hand-picked offsets;
* a point whose worker raises is retried (with the
  :class:`~repro.idicn.retry.RetryPolicy` backoff shapes) and, if it
  keeps failing, *reported* in :attr:`SweepOutcome.failures` — never
  silently dropped; a deadline turns still-pending points into reported
  failures while keeping every finished result (partial collection),
  distinguishing points that *started* and overran (``timeout:``
  errors) from points cancelled before their first attempt
  (``cancelled:`` errors, :attr:`SweepOutcome.cancelled`).

Observability (all three sinks default to ``None`` and cost nothing
when absent — lint rule ``O502`` pins the gating):

* ``observer`` — workers collect simulation counters into a local
  registry and ship its snapshot home with the chunk result; the parent
  merges shards on arrival (counters sum, so the merged registry is
  byte-identical to a serial run's regardless of completion order) and
  adds the sweep orchestration tallies.  Wall-clock families
  (:data:`WALLCLOCK_METRICS`) are parent-only and excluded by
  :func:`deterministic_snapshot`.
* ``spans`` — a :class:`~repro.obs.spans.SpanTracker`; the sweep emits
  a ``sweep`` span with one ``chunk`` child per submitted chunk and one
  ``point`` child per executed point.  Span records carry only
  deterministic values, so for a fixed ``chunk_size`` the merged span
  file is byte-identical across runs and worker counts (retries add
  extra ``retry-*`` chunks, so identity is guaranteed for clean runs).
* ``progress`` — a :class:`~repro.obs.progress.ProgressReporter`
  heartbeat updated as chunks complete.

Workers default to the fast engine (:mod:`repro.core.fastpath`); with
``workers=0`` the sweep runs serially in-process, which is also the
fallback when only one point is requested.
"""

from __future__ import annotations

# The wall-clock reads in this module (time.monotonic/time.sleep)
# schedule the sweep itself — deadlines and retry-backoff pauses; no
# simulated result ever observes them.
# lint: disable-file=D105
import inspect
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

import numpy as np

from ..idicn.retry import RetryPolicy
from .architectures import Architecture, BASELINE_ARCHITECTURES
from .experiment import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
    run_streamed_experiment,
)
from .metrics import Improvements, improvements, merge_results

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.progress import ProgressReporter
    from ..obs.registry import MetricsRegistry
    from ..obs.sink import Observer
    from ..obs.spans import SpanTracker

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "WALLCLOCK_METRICS",
    "SweepOutcome",
    "SweepPoint",
    "deterministic_snapshot",
    "merge_sharded_results",
    "run_sweep",
    "seeded_configs",
    "shard_points",
    "spawn_seeds",
]

#: One retry per failing point, no backoff pause by default (sweep points
#: are deterministic, so retries mostly paper over transient worker
#: failures such as an OOM-killed process).
DEFAULT_RETRY_POLICY = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)

#: Registry families that carry wall-clock measurements.  They live only
#: in the parent registry (never in worker snapshots) and are the one
#: part of a sweep's merged registry that legitimately differs between
#: two runs — strip them with :func:`deterministic_snapshot` before any
#: byte-equality comparison.
WALLCLOCK_METRICS = frozenset(
    {
        "repro_phase_seconds",
        "repro_sweep_chunk_seconds",
        "repro_sweep_chunk_requests_per_second",
        "repro_sweep_backoff_seconds_total",
    }
)

#: Error strings for the two distinct deadline outcomes.
_TIMEOUT_ERROR = "timeout: sweep deadline exceeded"
_CANCELLED_ERROR = "cancelled: sweep deadline exceeded before the attempt started"


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: a key, a config, and its architecture line-up."""

    key: str
    config: ExperimentConfig
    architectures: tuple[Architecture, ...] = BASELINE_ARCHITECTURES
    #: Optional trace-driven object sequence (see ``run_experiment``).
    objects: np.ndarray | None = None
    #: Optional ``(index, num_shards)`` PoP shard: the point executes
    #: :func:`~repro.core.experiment.run_streamed_experiment` on the
    #: sub-stream of requests arriving at PoPs with
    #: ``pop % num_shards == index``.  The worker regenerates the
    #: seed-derived stream locally, so no request arrays ride in the
    #: pickled point.  Mutually exclusive with ``objects``.
    shard: tuple[int, int] | None = None


@dataclass
class SweepOutcome:
    """Everything a sweep produced, successes and failures alike.

    ``results`` maps point keys to experiment results; ``failures`` maps
    the keys that never succeeded to their per-attempt error strings.
    Every submitted key appears in exactly one of the two mappings.
    ``attempts`` counts executions per key (1 = first try succeeded,
    0 = the point never started).
    """

    results: dict[str, ExperimentResult] = field(default_factory=dict)
    failures: dict[str, list[str]] = field(default_factory=dict)
    attempts: dict[str, int] = field(default_factory=dict)

    @property
    def cancelled(self) -> tuple[str, ...]:
        """Keys whose final failure was a pre-start cancellation.

        A deadline produces two different kinds of losers: points that
        started and overran (``timeout:`` errors) and points the sweep
        never got to (``cancelled:`` errors).  Forensics care — a
        cancelled point is innocent; a timed-out one may be the point
        that blew the budget.
        """
        return tuple(
            sorted(
                key
                for key, errors in self.failures.items()
                if errors and errors[-1].startswith("cancelled:")
            )
        )

    def raise_on_failure(self) -> None:
        """Raise if any point failed (for callers that need all points)."""
        if self.failures:
            summary = "; ".join(
                f"{key}: {errors[-1]}" for key, errors in self.failures.items()
            )
            raise RuntimeError(f"sweep points failed: {summary}")


def spawn_seeds(base_seed: int, count: int) -> tuple[int, ...]:
    """``count`` collision-free child seeds derived from one base seed.

    Uses ``SeedSequence.spawn`` so the streams are independent no matter
    how points are chunked across workers; the same base seed always
    yields the same children (reproducible reruns).
    """
    children = np.random.SeedSequence(base_seed).spawn(count)
    return tuple(
        int(child.generate_state(1, np.uint64)[0]) for child in children
    )


def seeded_configs(
    base_seed: int, configs: Iterable[ExperimentConfig]
) -> tuple[ExperimentConfig, ...]:
    """Re-seed a grid of configs with independent per-point seeds."""
    configs = tuple(configs)
    seeds = spawn_seeds(base_seed, len(configs))
    return tuple(
        config.with_(seed=seed) for config, seed in zip(configs, seeds)
    )


def deterministic_snapshot(
    registry: "MetricsRegistry",
) -> dict[str, object]:
    """A registry snapshot with the wall-clock families stripped.

    This is the artifact the determinism guarantees apply to: for the
    same points and seed it is byte-identical across runs, worker
    counts, and chunk completion orders.
    """
    snapshot = registry.snapshot()
    metrics = snapshot["metrics"]
    assert isinstance(metrics, list)
    snapshot["metrics"] = [
        family
        for family in metrics
        if family["name"] not in WALLCLOCK_METRICS
    ]
    return snapshot


def _run_point(
    point: SweepPoint, engine: str, observer: "Observer | None" = None
) -> ExperimentResult:
    """Execute one grid point (also the worker-side entry).

    A sharded point runs the streamed engine path on its PoP
    sub-stream; everything else takes the materialized path.
    """
    if point.shard is not None:
        if point.objects is not None:
            raise ValueError(
                "a sweep point cannot set both shard and objects"
            )
        return run_streamed_experiment(
            point.config,
            point.architectures,
            shard=point.shard,
            engine=engine,
            observer=observer,
        )
    return run_experiment(
        point.config,
        point.architectures,
        objects=point.objects,
        engine=engine,
        observer=observer,
    )


def shard_points(point: SweepPoint, num_shards: int) -> tuple[SweepPoint, ...]:
    """Split one streamed point into ``num_shards`` PoP-shard points.

    Each shard point replays only the requests arriving at its PoPs
    (``pop % num_shards == shard``), regenerated worker-side from the
    point's seed, so a single huge streamed trace spreads across
    :func:`run_sweep` workers — with per-shard progress heartbeats for
    free — without any request arrays crossing process boundaries.
    Recombine with :func:`merge_sharded_results`.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if point.objects is not None:
        raise ValueError("cannot shard a point with trace objects attached")
    return tuple(
        SweepPoint(
            key=f"{point.key}/shard-{index}-of-{num_shards}",
            config=point.config,
            architectures=point.architectures,
            shard=(index, num_shards),
        )
        for index in range(num_shards)
    )


def merge_sharded_results(
    point: SweepPoint, shard_results: Sequence[ExperimentResult]
) -> ExperimentResult:
    """Merge the per-shard results of one :func:`shard_points` split.

    Counters are additive over the PoP partition of the stream
    (:func:`~repro.core.metrics.merge_results`), and improvements are
    recomputed from the merged aggregates.  At ``warmup_fraction=0``
    the *no-cache baseline* merge is exact: the shards partition the
    request stream and no state couples them, so the merged baseline
    equals the unsharded run bit for bit.  Cached architectures are an
    approximation — each shard replays against its own cache state, so
    a backbone cache warmed by one shard's requests never serves
    another shard's — and with warmup each shard additionally warms up
    on its own prefix instead of the global one.
    """
    if not shard_results:
        raise ValueError("cannot merge zero shard results")
    baseline = merge_results([shard.baseline for shard in shard_results])
    arch_names = list(shard_results[0].results)
    results = {
        name: merge_results([shard.results[name] for shard in shard_results])
        for name in arch_names
    }
    improved: dict[str, Improvements] = {
        name: improvements(result, baseline)
        for name, result in results.items()
    }
    return ExperimentResult(
        config=point.config,
        baseline=baseline,
        results=results,
        improvements=improved,
    )


def _accepts_observer(runner: Callable[..., object]) -> bool:
    """Whether a runner callable can take an ``observer=`` keyword."""
    try:
        parameters = inspect.signature(runner).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return False
    if "observer" in parameters:
        return True
    return any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


def _call_runner(
    runner: Callable[..., ExperimentResult],
    point: SweepPoint,
    engine: str,
    observer: "Observer | None",
) -> ExperimentResult:
    """Invoke a runner, forwarding the observer only if it takes one.

    Custom runners predating observability keep their two-argument
    signature; the default :func:`_run_point` threads the observer into
    :func:`run_experiment` so worker-local registries see every
    simulated request.
    """
    if observer is not None and _accepts_observer(runner):
        return runner(point, engine, observer=observer)
    return runner(point, engine)


def _result_requests(result: object) -> int:
    """Requests simulated by one point (baseline plus each architecture).

    Deterministic — derived from the workload size, never from timing.
    Returns 0 for custom runner payloads without the result shape.
    """
    baseline = getattr(result, "baseline", None)
    per_run = getattr(baseline, "num_requests", None)
    if per_run is None:
        return 0
    return int(per_run) * (1 + len(getattr(result, "results", ())))


def _span_name(key: str) -> str:
    """A point key as a span path segment (paths reserve ``/``)."""
    return key.replace("/", "_")


def _record_point_span(
    tracker: "SpanTracker", point: SweepPoint, status: str, requests: int
) -> None:
    """Emit the closed ``point`` span for one executed sweep point.

    Shared by the serial path and the worker chunks so both produce
    byte-identical records: key, per-point seed, final status, and the
    deterministic request count — never an elapsed time.
    """
    with tracker.span(
        f"point-{_span_name(point.key)}",
        "point",
        key=point.key,
        seed=point.config.seed,
        status=status,
        requests=requests,
    ):
        pass


def _run_chunk(
    points: Sequence[SweepPoint],
    engine: str,
    runner: Callable[..., ExperimentResult],
    collect_metrics: bool = False,
    collect_spans: bool = False,
    span_seed: int = 0,
    span_path: str = "",
) -> tuple[
    list[tuple[str, bool, object]],
    dict[str, object] | None,
    list[dict[str, object]] | None,
    float,
    int,
]:
    """Worker task: run a chunk, reporting per-point success or error.

    Exceptions are converted to strings here so one bad point never
    poisons its chunk-mates or the process pool.  With
    ``collect_metrics`` the chunk runs under a worker-local
    :class:`~repro.obs.sink.Observer` and ships the registry snapshot
    home (counters only, so the parent merge is order-independent);
    with ``collect_spans`` it ships ``point`` span records rooted at
    the chunk path the parent assigned.  The wall-clock ``elapsed`` and
    deterministic ``requests`` tallies feed the parent-only throughput
    gauges.
    """
    observer: "Observer | None" = None
    tracker: "SpanTracker | None" = None
    if collect_metrics:
        from ..obs.sink import Observer

        observer = Observer()
    if collect_spans:
        from ..obs.spans import SpanTracker

        tracker = SpanTracker(span_seed, prefix=span_path)
    out: list[tuple[str, bool, object]] = []
    requests = 0
    start = time.perf_counter()
    for point in points:
        try:
            result = _call_runner(runner, point, engine, observer)
        except Exception as exc:  # noqa: BLE001 - reported, never dropped
            out.append((point.key, False, f"{type(exc).__name__}: {exc}"))
            if tracker is not None:
                _record_point_span(tracker, point, "error", 0)
            continue
        out.append((point.key, True, result))
        if tracker is not None or observer is not None:
            point_requests = _result_requests(result)
            requests += point_requests
            if tracker is not None:
                _record_point_span(tracker, point, "ok", point_requests)
    elapsed = time.perf_counter() - start
    snapshot = observer.registry.snapshot() if observer is not None else None
    records = tracker.records() if tracker is not None else None
    return out, snapshot, records, elapsed, requests


def _chunked(
    points: Sequence[SweepPoint], chunk_size: int
) -> Iterator[Sequence[SweepPoint]]:
    for start in range(0, len(points), chunk_size):
        yield points[start : start + chunk_size]


def _preregister_sweep_metrics(registry: "MetricsRegistry") -> None:
    """Create the sweep orchestration families up front.

    Pre-registration pins help text (merge is first-registration-wins)
    and guarantees the families exist — zero-valued — even for sweeps
    that finish without incident, so dashboards and diffs never chase
    missing series.
    """
    registry.counter(
        "repro_sweep_points_total", help="sweep points submitted"
    )
    registry.counter(
        "repro_sweep_points_completed",
        help="sweep points that finished ok",
    )
    registry.counter(
        "repro_sweep_points_failed",
        help="sweep points that exhausted retries or hit the deadline",
    )
    registry.counter(
        "repro_sweep_points_cancelled",
        help="points cancelled before their first attempt (subset of "
        "failed)",
    )
    registry.counter(
        "repro_sweep_points_retried",
        help="sweep points that needed more than one attempt",
    )
    registry.counter(
        "repro_sweep_attempts_total",
        help="point executions including retries",
    )
    registry.counter(
        "repro_sweep_backoff_seconds_total",
        help="retry backoff pause seconds (computed delays)",
    )


def run_sweep(
    points: Iterable[SweepPoint],
    workers: int | None = None,
    engine: str = "fast",
    chunk_size: int | None = None,
    retry_policy: RetryPolicy | None = DEFAULT_RETRY_POLICY,
    timeout: float | None = None,
    runner: Callable[..., ExperimentResult] = _run_point,
    observer: "Observer | None" = None,
    progress: "ProgressReporter | None" = None,
    spans: "SpanTracker | None" = None,
) -> SweepOutcome:
    """Run a grid of sweep points, in parallel when it pays.

    ``workers`` defaults to ``min(cpu_count, len(points))``; 0 or 1
    forces the serial in-process path.  ``chunk_size`` groups points per
    worker task (default: spread points evenly, ~4 chunks per worker).
    ``retry_policy`` shapes re-execution of failing points
    (``max_attempts`` tries with ``backoff_delay`` pauses); ``None``
    means a single attempt.  ``timeout`` is a wall-clock deadline in
    seconds for the whole sweep: finished points are kept, unfinished
    ones are reported as failures (``timeout:`` if they started,
    ``cancelled:`` if they never did).  ``runner`` is the per-point
    callable (overridable for tests; must be picklable for workers; may
    optionally accept an ``observer=`` keyword).

    ``observer`` makes the parent registry the merged source of truth
    for the whole sweep: simulation counters collected worker-locally
    and merged on arrival, plus the orchestration tallies
    (``repro_sweep_points_*``, attempts, backoff) and the wall-clock
    per-chunk throughput gauges (see :data:`WALLCLOCK_METRICS`).
    ``progress`` receives heartbeat updates as points finish; ``spans``
    receives the sweep/chunk/point span tree.  All three default to
    ``None`` and, absent, leave the sweep bit-identical to an
    unobserved one.
    """
    points = list(points)
    keys = [point.key for point in points]
    if len(set(keys)) != len(keys):
        raise ValueError("sweep point keys must be unique")
    outcome = SweepOutcome()
    sweep_start = time.perf_counter()

    if observer is not None:
        _preregister_sweep_metrics(observer.registry)
    if progress is not None:
        progress.start(total=len(points))
    sweep_span = None
    if spans is not None:
        sweep_span = spans.open(
            "sweep", "sweep", points=len(points), engine=engine
        )

    def observed(finished: SweepOutcome) -> SweepOutcome:
        if spans is not None:
            spans.close(sweep_span)
        retried = sum(
            1 for count in finished.attempts.values() if count > 1
        )
        if observer is not None:
            from ..obs.profiling import PHASE_METRIC

            registry = observer.registry
            registry.counter("repro_sweep_points_total").inc(
                float(len(points))
            )
            registry.counter("repro_sweep_points_completed").inc(
                float(len(finished.results))
            )
            registry.counter("repro_sweep_points_failed").inc(
                float(len(finished.failures))
            )
            registry.counter("repro_sweep_points_cancelled").inc(
                float(len(finished.cancelled))
            )
            registry.counter("repro_sweep_points_retried").inc(
                float(retried)
            )
            registry.counter("repro_sweep_attempts_total").inc(
                float(sum(finished.attempts.values()))
            )
            registry.gauge(
                PHASE_METRIC,
                help="wall-clock seconds spent per named phase",
                phase="sweep",
            ).add(time.perf_counter() - sweep_start)
        if progress is not None:
            progress.update(
                done=len(finished.results),
                failed=len(finished.failures),
                in_flight=0,
                retried=retried,
                counters=(
                    observer.registry.totals()
                    if observer is not None
                    else None
                ),
                force=True,
            )
        return finished

    if not points:
        return observed(outcome)
    if workers is None:
        workers = min(os.cpu_count() or 1, len(points))
    rng = np.random.default_rng(retry_policy.seed if retry_policy else 0)
    max_attempts = retry_policy.max_attempts if retry_policy else 1
    deadline = time.monotonic() + timeout if timeout is not None else None

    def backoff(attempt: int) -> None:
        if retry_policy is None:
            return
        delay = retry_policy.backoff_delay(attempt - 1, rng)
        if observer is not None:
            observer.registry.counter(
                "repro_sweep_backoff_seconds_total"
            ).inc(delay)
        if delay > 0:
            time.sleep(delay)

    if chunk_size is None:
        chunk_size = max(1, len(points) // (max(workers, 1) * 4))
    if spans is not None:
        sweep_span.annotate(chunk_size=chunk_size)
    collect = observer is not None or spans is not None or progress is not None

    if workers <= 1 or len(points) == 1:
        from_obs = None
        if observer is not None:
            from ..obs.sink import Observer

            # Metrics-only view of the parent registry: serial points
            # write the same counters a worker shard would ship home.
            from_obs = Observer(registry=observer.registry)
        done_points = failed_points = retried_points = 0
        for index, chunk in enumerate(_chunked(points, chunk_size)):
            chunk_span = None
            if spans is not None:
                chunk_span = spans.open(
                    f"chunk-{index:04d}", "chunk", points=len(chunk)
                )
            chunk_requests = 0
            chunk_start = time.perf_counter()
            for point in chunk:
                errors: list[str] = []
                started = False
                for attempt in range(1, max_attempts + 1):
                    if deadline is not None and time.monotonic() > deadline:
                        errors.append(
                            _TIMEOUT_ERROR if started else _CANCELLED_ERROR
                        )
                        break
                    started = True
                    outcome.attempts[point.key] = attempt
                    try:
                        outcome.results[point.key] = _call_runner(
                            runner, point, engine, from_obs
                        )
                        break
                    except Exception as exc:  # noqa: BLE001
                        errors.append(f"{type(exc).__name__}: {exc}")
                        if attempt < max_attempts:
                            backoff(attempt)
                if point.key not in outcome.results:
                    outcome.failures[point.key] = errors or [_TIMEOUT_ERROR]
                    outcome.attempts.setdefault(point.key, 0)
                    failed_points += 1
                    if spans is not None:
                        _record_point_span(spans, point, "error", 0)
                else:
                    done_points += 1
                    if outcome.attempts[point.key] > 1:
                        retried_points += 1
                    if collect:
                        point_requests = _result_requests(
                            outcome.results[point.key]
                        )
                        chunk_requests += point_requests
                        if spans is not None:
                            _record_point_span(
                                spans, point, "ok", point_requests
                            )
                if progress is not None:
                    progress.update(
                        done=done_points,
                        failed=failed_points,
                        in_flight=0,
                        retried=retried_points,
                        counters=(
                            observer.registry.totals()
                            if observer is not None
                            else None
                        ),
                    )
            if spans is not None:
                chunk_span.annotate(requests=chunk_requests)
                spans.close(chunk_span)
            if observer is not None:
                elapsed = time.perf_counter() - chunk_start
                _chunk_throughput(
                    observer.registry, f"chunk-{index:04d}",
                    elapsed, chunk_requests,
                )
        return observed(outcome)

    by_key = {point.key: point for point in points}
    errors_by_key: dict[str, list[str]] = {key: [] for key in keys}
    attempts_by_key: dict[str, int] = {key: 0 for key in keys}
    retried_count = 0

    with ProcessPoolExecutor(max_workers=workers) as pool:
        pending = {}
        chunk_spans: dict[object, object] = {}
        chunk_labels: dict[object, str] = {}

        def submit(chunk: Sequence[SweepPoint], label: str) -> None:
            span_path = ""
            chunk_span = None
            if spans is not None:
                with spans.span(label, "chunk", points=len(chunk)) as opened:
                    chunk_span = opened
                span_path = chunk_span.path
            future = pool.submit(
                _run_chunk,
                chunk,
                engine,
                runner,
                observer is not None,
                spans is not None,
                spans.seed if spans is not None else 0,
                span_path,
            )
            pending[future] = [point.key for point in chunk]
            chunk_labels[future] = label
            if chunk_span is not None:
                chunk_spans[future] = chunk_span

        for index, chunk in enumerate(_chunked(points, chunk_size)):
            for point in chunk:
                attempts_by_key[point.key] += 1
            submit(chunk, f"chunk-{index:04d}")
        timed_out = False
        while pending:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    timed_out = True
                    break
            done, _ = wait(
                pending, timeout=remaining, return_when=FIRST_COMPLETED
            )
            if not done:
                timed_out = True
                break
            for future in done:
                chunk_keys = pending.pop(future)
                label = chunk_labels.pop(future)
                chunk_span = chunk_spans.pop(future, None)
                try:
                    (
                        reports,
                        snapshot,
                        records,
                        elapsed,
                        chunk_requests,
                    ) = future.result()
                except Exception as exc:  # noqa: BLE001 - whole chunk died
                    reports = [
                        (key, False, f"{type(exc).__name__}: {exc}")
                        for key in chunk_keys
                    ]
                    snapshot = records = None
                    elapsed = 0.0
                    chunk_requests = 0
                if observer is not None and snapshot is not None:
                    observer.registry.merge(snapshot)
                    _chunk_throughput(
                        observer.registry, label, elapsed, chunk_requests
                    )
                if spans is not None:
                    chunk_span.annotate(requests=chunk_requests)
                    if records is not None:
                        spans.extend(records)
                for key, ok, payload in reports:
                    if ok:
                        outcome.results[key] = payload
                        continue
                    errors_by_key[key].append(payload)
                    if attempts_by_key[key] < max_attempts:
                        # Retry the point alone so a chunk-mate's cost
                        # is not paid twice.
                        backoff(attempts_by_key[key])
                        attempts_by_key[key] += 1
                        retried_count += 1
                        submit(
                            [by_key[key]],
                            f"retry-{_span_name(key)}-{attempts_by_key[key]}",
                        )
                    else:
                        outcome.failures[key] = errors_by_key[key]
                if progress is not None:
                    progress.update(
                        done=len(outcome.results),
                        failed=len(outcome.failures),
                        in_flight=sum(
                            len(keys) for keys in pending.values()
                        ),
                        retried=retried_count,
                        counters=(
                            observer.registry.totals()
                            if observer is not None
                            else None
                        ),
                    )
        if timed_out:
            for future, chunk_keys in pending.items():
                never_ran = future.cancel()
                for key in chunk_keys:
                    if key in outcome.results:
                        continue
                    if never_ran:
                        # The chunk was still queued: its points never
                        # started, which is a different forensic story
                        # than a point that ran out the clock.
                        attempts_by_key[key] -= 1
                        errors_by_key[key].append(_CANCELLED_ERROR)
                    else:
                        errors_by_key[key].append(_TIMEOUT_ERROR)
                    outcome.failures[key] = errors_by_key[key]
            pool.shutdown(wait=False, cancel_futures=True)

    outcome.attempts.update(attempts_by_key)
    return observed(outcome)


def _chunk_throughput(
    registry: "MetricsRegistry", label: str, elapsed: float, requests: int
) -> None:
    """Record one chunk's wall-clock cost and request throughput.

    Parent-only families (see :data:`WALLCLOCK_METRICS`): they carry
    wall-clock values, so they never ride in worker snapshots and are
    stripped from deterministic comparisons.
    """
    registry.gauge(
        "repro_sweep_chunk_seconds",
        help="wall-clock seconds per completed chunk",
        chunk=label,
    ).set(elapsed)
    if elapsed > 0:
        registry.gauge(
            "repro_sweep_chunk_requests_per_second",
            help="simulated request throughput per completed chunk",
            chunk=label,
        ).set(requests / elapsed)
