"""Parallel design-space sweeps (Section 4's grid, at production scale).

The paper's evaluation is a grid — architectures x topologies x cache
budgets x Zipf parameters — and every point is an independent
:func:`~repro.core.experiment.run_experiment` call.  This module fans a
grid out over worker processes:

* each grid point is a :class:`SweepPoint` (a fully seeded
  :class:`ExperimentConfig` plus its architecture line-up and optional
  trace objects), so a point's result depends only on the point itself
  — chunked parallel execution is bit-identical to serial execution
  regardless of worker count;
* per-point seeds are derived with :func:`spawn_seeds` from one base
  seed via ``numpy.random.SeedSequence.spawn``, giving collision-free
  independent streams without hand-picked offsets;
* a point whose worker raises is retried (with the
  :class:`~repro.idicn.retry.RetryPolicy` backoff shapes) and, if it
  keeps failing, *reported* in :attr:`SweepOutcome.failures` — never
  silently dropped; a deadline turns still-pending points into reported
  failures while keeping every finished result (partial collection).

Workers default to the fast engine (:mod:`repro.core.fastpath`); with
``workers=0`` the sweep runs serially in-process, which is also the
fallback when only one point is requested.
"""

from __future__ import annotations

# The wall-clock reads in this module (time.monotonic/time.sleep)
# schedule the sweep itself — deadlines and retry-backoff pauses; no
# simulated result ever observes them.
# lint: disable-file=D105
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

import numpy as np

from ..idicn.retry import RetryPolicy
from .architectures import Architecture, BASELINE_ARCHITECTURES
from .experiment import ExperimentConfig, ExperimentResult, run_experiment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.sink import Observer

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "SweepOutcome",
    "SweepPoint",
    "run_sweep",
    "seeded_configs",
    "spawn_seeds",
]

#: One retry per failing point, no backoff pause by default (sweep points
#: are deterministic, so retries mostly paper over transient worker
#: failures such as an OOM-killed process).
DEFAULT_RETRY_POLICY = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: a key, a config, and its architecture line-up."""

    key: str
    config: ExperimentConfig
    architectures: tuple[Architecture, ...] = BASELINE_ARCHITECTURES
    #: Optional trace-driven object sequence (see ``run_experiment``).
    objects: np.ndarray | None = None


@dataclass
class SweepOutcome:
    """Everything a sweep produced, successes and failures alike.

    ``results`` maps point keys to experiment results; ``failures`` maps
    the keys that never succeeded to their per-attempt error strings.
    Every submitted key appears in exactly one of the two mappings.
    ``attempts`` counts executions per key (1 = first try succeeded).
    """

    results: dict[str, ExperimentResult] = field(default_factory=dict)
    failures: dict[str, list[str]] = field(default_factory=dict)
    attempts: dict[str, int] = field(default_factory=dict)

    def raise_on_failure(self) -> None:
        """Raise if any point failed (for callers that need all points)."""
        if self.failures:
            summary = "; ".join(
                f"{key}: {errors[-1]}" for key, errors in self.failures.items()
            )
            raise RuntimeError(f"sweep points failed: {summary}")


def spawn_seeds(base_seed: int, count: int) -> tuple[int, ...]:
    """``count`` collision-free child seeds derived from one base seed.

    Uses ``SeedSequence.spawn`` so the streams are independent no matter
    how points are chunked across workers; the same base seed always
    yields the same children (reproducible reruns).
    """
    children = np.random.SeedSequence(base_seed).spawn(count)
    return tuple(
        int(child.generate_state(1, np.uint64)[0]) for child in children
    )


def seeded_configs(
    base_seed: int, configs: Iterable[ExperimentConfig]
) -> tuple[ExperimentConfig, ...]:
    """Re-seed a grid of configs with independent per-point seeds."""
    configs = tuple(configs)
    seeds = spawn_seeds(base_seed, len(configs))
    return tuple(
        config.with_(seed=seed) for config, seed in zip(configs, seeds)
    )


def _run_point(point: SweepPoint, engine: str) -> ExperimentResult:
    """Execute one grid point (also the worker-side entry)."""
    return run_experiment(
        point.config,
        point.architectures,
        objects=point.objects,
        engine=engine,
    )


def _run_chunk(
    points: Sequence[SweepPoint],
    engine: str,
    runner: Callable[[SweepPoint, str], ExperimentResult],
) -> list[tuple[str, bool, object]]:
    """Worker task: run a chunk, reporting per-point success or error.

    Exceptions are converted to strings here so one bad point never
    poisons its chunk-mates or the process pool.
    """
    out: list[tuple[str, bool, object]] = []
    for point in points:
        try:
            out.append((point.key, True, runner(point, engine)))
        except Exception as exc:  # noqa: BLE001 - reported, never dropped
            out.append((point.key, False, f"{type(exc).__name__}: {exc}"))
    return out


def _chunked(
    points: Sequence[SweepPoint], chunk_size: int
) -> Iterator[Sequence[SweepPoint]]:
    for start in range(0, len(points), chunk_size):
        yield points[start : start + chunk_size]


def run_sweep(
    points: Iterable[SweepPoint],
    workers: int | None = None,
    engine: str = "fast",
    chunk_size: int | None = None,
    retry_policy: RetryPolicy | None = DEFAULT_RETRY_POLICY,
    timeout: float | None = None,
    runner: Callable[[SweepPoint, str], ExperimentResult] = _run_point,
    observer: "Observer | None" = None,
) -> SweepOutcome:
    """Run a grid of sweep points, in parallel when it pays.

    ``workers`` defaults to ``min(cpu_count, len(points))``; 0 or 1
    forces the serial in-process path.  ``chunk_size`` groups points per
    worker task (default: spread points evenly, ~4 chunks per worker).
    ``retry_policy`` shapes re-execution of failing points
    (``max_attempts`` tries with ``backoff_delay`` pauses); ``None``
    means a single attempt.  ``timeout`` is a wall-clock deadline in
    seconds for the whole sweep: finished points are kept, unfinished
    ones are reported as failures.  ``runner`` is the per-point
    callable (overridable for tests; must be picklable for workers).

    ``observer`` records *orchestration* metrics for the sweep —
    point/attempt/failure tallies and the wall-clock phase gauge
    ``repro_phase_seconds{phase="sweep"}``.  Simulation-level counters
    are not collected here: worker processes cannot share a registry,
    so attach the observer to :func:`run_experiment` directly when
    per-run detail is needed.
    """
    points = list(points)
    keys = [point.key for point in points]
    if len(set(keys)) != len(keys):
        raise ValueError("sweep point keys must be unique")
    outcome = SweepOutcome()
    sweep_start = time.perf_counter()

    def observed(finished: SweepOutcome) -> SweepOutcome:
        if observer is not None:
            from ..obs.profiling import PHASE_METRIC

            registry = observer.registry
            registry.counter(
                "repro_sweep_points_total",
                help="sweep points by final status",
                status="ok",
            ).inc(float(len(finished.results)))
            registry.counter(
                "repro_sweep_points_total", status="failed"
            ).inc(float(len(finished.failures)))
            registry.counter(
                "repro_sweep_attempts_total",
                help="point executions including retries",
            ).inc(float(sum(finished.attempts.values())))
            registry.gauge(
                PHASE_METRIC,
                help="wall-clock seconds spent per named phase",
                phase="sweep",
            ).add(time.perf_counter() - sweep_start)
        return finished

    if not points:
        return observed(outcome)
    if workers is None:
        workers = min(os.cpu_count() or 1, len(points))
    rng = np.random.default_rng(retry_policy.seed if retry_policy else 0)
    max_attempts = retry_policy.max_attempts if retry_policy else 1
    deadline = time.monotonic() + timeout if timeout is not None else None

    def backoff(attempt: int) -> None:
        if retry_policy is None:
            return
        delay = retry_policy.backoff_delay(attempt - 1, rng)
        if delay > 0:
            time.sleep(delay)

    if workers <= 1 or len(points) == 1:
        for point in points:
            errors: list[str] = []
            for attempt in range(1, max_attempts + 1):
                if deadline is not None and time.monotonic() > deadline:
                    errors.append("timeout: sweep deadline exceeded")
                    break
                outcome.attempts[point.key] = attempt
                try:
                    outcome.results[point.key] = runner(point, engine)
                    break
                except Exception as exc:  # noqa: BLE001
                    errors.append(f"{type(exc).__name__}: {exc}")
                    if attempt < max_attempts:
                        backoff(attempt)
            if point.key not in outcome.results:
                outcome.failures[point.key] = errors or [
                    "timeout: sweep deadline exceeded"
                ]
                outcome.attempts.setdefault(point.key, 0)
        return observed(outcome)

    by_key = {point.key: point for point in points}
    if chunk_size is None:
        chunk_size = max(1, len(points) // (workers * 4))
    errors_by_key: dict[str, list[str]] = {key: [] for key in keys}
    attempts_by_key: dict[str, int] = {key: 0 for key in keys}

    with ProcessPoolExecutor(max_workers=workers) as pool:
        pending = {}
        for chunk in _chunked(points, chunk_size):
            for point in chunk:
                attempts_by_key[point.key] += 1
            pending[pool.submit(_run_chunk, chunk, engine, runner)] = [
                point.key for point in chunk
            ]
        timed_out = False
        while pending:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    timed_out = True
                    break
            done, _ = wait(
                pending, timeout=remaining, return_when=FIRST_COMPLETED
            )
            if not done:
                timed_out = True
                break
            for future in done:
                chunk_keys = pending.pop(future)
                try:
                    reports = future.result()
                except Exception as exc:  # noqa: BLE001 - whole chunk died
                    reports = [
                        (key, False, f"{type(exc).__name__}: {exc}")
                        for key in chunk_keys
                    ]
                for key, ok, payload in reports:
                    if ok:
                        outcome.results[key] = payload
                        continue
                    errors_by_key[key].append(payload)
                    if attempts_by_key[key] < max_attempts:
                        # Retry the point alone so a chunk-mate's cost
                        # is not paid twice.
                        backoff(attempts_by_key[key])
                        attempts_by_key[key] += 1
                        pending[
                            pool.submit(
                                _run_chunk, [by_key[key]], engine, runner
                            )
                        ] = [key]
                    else:
                        outcome.failures[key] = errors_by_key[key]
        if timed_out:
            for future, chunk_keys in pending.items():
                future.cancel()
                for key in chunk_keys:
                    if key not in outcome.results:
                        errors_by_key[key].append(
                            "timeout: sweep deadline exceeded"
                        )
                        outcome.failures[key] = errors_by_key[key]
            pool.shutdown(wait=False, cancel_futures=True)

    outcome.attempts.update(attempts_by_key)
    return observed(outcome)
