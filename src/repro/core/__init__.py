"""Simulation core: the caching design-space study (Sections 3-5)."""

from .architectures import (
    BASELINE_ARCHITECTURES,
    EDGE,
    EDGE_COOP,
    EDGE_INF,
    EDGE_NORM,
    EDGE_VARIANTS,
    ICN_NR,
    ICN_NR_GLOBAL,
    ICN_NR_INF,
    ICN_SP,
    Architecture,
    architecture,
)
from .capacity import CapacityModel, CapacityTracker
from .engine import ENGINES, Simulator, simulate_no_cache
from .experiment import (
    ASIA_ALPHA,
    ExperimentConfig,
    ExperimentResult,
    build_network,
    build_workload,
    performance_gap,
    run_experiment,
)
from .latency import (
    LATENCY_MODELS,
    arithmetic_hop_costs,
    core_weighted_hop_costs,
    hop_costs,
    unit_hop_costs,
)
from .metrics import (
    METRIC_NAMES,
    Improvements,
    MetricsCollector,
    SimulationResult,
    gap,
    improvements,
)
from .routing import ReplicaDirectory
from .sweep import (
    SweepOutcome,
    SweepPoint,
    run_sweep,
    seeded_configs,
    spawn_seeds,
)

__all__ = [
    "ASIA_ALPHA",
    "Architecture",
    "BASELINE_ARCHITECTURES",
    "CapacityModel",
    "CapacityTracker",
    "EDGE",
    "ENGINES",
    "EDGE_COOP",
    "EDGE_INF",
    "EDGE_NORM",
    "EDGE_VARIANTS",
    "ExperimentConfig",
    "ExperimentResult",
    "ICN_NR",
    "ICN_NR_GLOBAL",
    "ICN_NR_INF",
    "ICN_SP",
    "Improvements",
    "LATENCY_MODELS",
    "METRIC_NAMES",
    "MetricsCollector",
    "ReplicaDirectory",
    "SimulationResult",
    "Simulator",
    "SweepOutcome",
    "SweepPoint",
    "architecture",
    "arithmetic_hop_costs",
    "build_network",
    "build_workload",
    "core_weighted_hop_costs",
    "gap",
    "hop_costs",
    "improvements",
    "performance_gap",
    "run_experiment",
    "run_sweep",
    "seeded_configs",
    "simulate_no_cache",
    "spawn_seeds",
    "unit_hop_costs",
]
