"""Per-hop latency models (Section 5.1, "Other parameters").

The baseline charges one latency unit per hop.  The paper also varies
the model in two ways chosen to magnify ICN-NR's advantage: (1) an
arithmetic progression of per-hop latency toward the core, and (2) core
hops costing ``d`` times more than access-tree hops — and finds the
ICN-NR/EDGE gap stays under 2% in both.  Each model compiles to a
:class:`repro.topology.network.HopCosts` table so the simulator's
latency math stays O(1) per request.
"""

from __future__ import annotations

from ..topology.network import HopCosts, Network

LATENCY_MODELS = ("unit", "arithmetic", "core_weighted")


def unit_hop_costs(network: Network) -> HopCosts:
    """Every hop costs 1 (the paper's baseline)."""
    return network.unit_hop_costs()


def arithmetic_hop_costs(network: Network) -> HopCosts:
    """Hop cost increases linearly toward the core.

    The hop just above a leaf costs 1, the next one 2, and so on; the
    hop into the PoP root costs ``depth`` and core hops continue the
    progression at ``depth + 1``.
    """
    tree = network.tree
    depth = tree.depth
    to_root = []
    for local in range(tree.size):
        d = tree.depth_of(local)
        # Hops cross depths d -> d-1 (cost depth-d+1) up to 1 -> 0 (cost depth).
        costs = range(depth - d + 1, depth + 1)
        to_root.append(float(sum(costs)))
    return HopCosts(tree_to_root=tuple(to_root), core_hop=float(depth + 1))


def core_weighted_hop_costs(network: Network, factor: float) -> HopCosts:
    """Tree hops cost 1; every core hop costs ``factor``."""
    if factor <= 0:
        raise ValueError(f"factor must be > 0, got {factor}")
    tree = network.tree
    return HopCosts(
        tree_to_root=tuple(
            float(tree.depth_of(local)) for local in range(tree.size)
        ),
        core_hop=float(factor),
    )


def hop_costs(network: Network, model: str = "unit", factor: float = 4.0) -> HopCosts:
    """Build the hop-cost table for a named latency model."""
    if model == "unit":
        return unit_hop_costs(network)
    if model == "arithmetic":
        return arithmetic_hop_costs(network)
    if model == "core_weighted":
        return core_weighted_hop_costs(network, factor)
    raise ValueError(f"unknown latency model {model!r}; choose from {LATENCY_MODELS}")
