"""Evaluation metrics (Section 4): latency, congestion, origin load.

All figures in the paper report *percentage improvement over a network
with no caching at all*, so a :class:`SimulationResult` carries raw
aggregates and :func:`improvements` normalizes one result against the
no-cache baseline of the same workload:

* latency — mean hops (hop-cost units) from the serving node to the
  request leaf, averaged over requests;
* congestion — object transfers crossing the most-loaded link;
* origin load — requests served by the most-loaded origin server.

The sensitivity figures additionally report the *gap*
``RelImprov(ICN-NR) - RelImprov(EDGE)`` via :func:`gap`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

METRIC_NAMES = ("latency", "congestion", "origin_load")


@dataclass(frozen=True)
class SimulationResult:
    """Raw aggregates from one simulation run (after warm-up)."""

    architecture: str
    num_requests: int
    total_latency: float
    max_link_transfers: float
    total_transfers: float
    max_origin_load: float
    total_origin_load: float
    cache_served: int
    coop_served: int
    link_transfers: np.ndarray
    origin_serves: np.ndarray
    #: Measured requests that had to route around at least one failed
    #: cache node (0 in a healthy network).
    fallback_served: int = 0

    @classmethod
    def from_counters(
        cls,
        architecture: str,
        num_requests: int,
        total_latency: float,
        link_transfers: Sequence[float] | np.ndarray,
        origin_serves: Sequence[float] | np.ndarray,
        cache_served: int,
        coop_served: int,
        fallback_served: int = 0,
    ) -> "SimulationResult":
        """Finalize batched counters into a result.

        ``link_transfers``/``origin_serves`` may be plain lists or
        arrays; they are copied into fresh float64 arrays.  Both
        simulation engines funnel through this constructor so the
        derived aggregates come from the same reductions over the same
        dtype — a precondition for bit-identical engine output.
        """
        link_arr = np.array(link_transfers, dtype=np.float64)
        origin_arr = np.array(origin_serves, dtype=np.float64)
        return cls(
            architecture=architecture,
            num_requests=num_requests,
            total_latency=total_latency,
            max_link_transfers=float(link_arr.max(initial=0.0)),
            total_transfers=float(link_arr.sum()),
            max_origin_load=float(origin_arr.max(initial=0.0)),
            total_origin_load=float(origin_arr.sum()),
            cache_served=cache_served,
            coop_served=coop_served,
            link_transfers=link_arr,
            origin_serves=origin_arr,
            fallback_served=fallback_served,
        )

    @property
    def mean_latency(self) -> float:
        """Average hop-cost latency per measured request."""
        return self.total_latency / self.num_requests if self.num_requests else 0.0

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of measured requests served from some cache."""
        if not self.num_requests:
            return 0.0
        return (self.cache_served + self.coop_served) / self.num_requests

    @property
    def fallback_ratio(self) -> float:
        """Fraction of measured requests that routed around a failed node."""
        if not self.num_requests:
            return 0.0
        return self.fallback_served / self.num_requests

    @property
    def availability(self) -> float:
        """Fraction of measured requests untouched by cache failures.

        Origins always answer, so every request is *served*; this
        reports how many were served without having to skip a failed
        cache node (1.0 in a healthy network).
        """
        return 1.0 - self.fallback_ratio


@dataclass(frozen=True)
class Improvements:
    """Percentage improvements over the no-cache baseline."""

    latency: float
    congestion: float
    origin_load: float

    def as_dict(self) -> dict[str, float]:
        """Metric-name → percentage mapping, in the paper's order."""
        return {
            "latency": self.latency,
            "congestion": self.congestion,
            "origin_load": self.origin_load,
        }

    def min(self) -> float:
        """Worst (smallest) improvement across the three metrics.

        Undefined (NaN) metrics — a zero no-cache baseline, see
        :func:`_percent_reduction` — are skipped; NaN is returned only
        when *every* metric is undefined.
        """
        defined = [
            value
            for value in (self.latency, self.congestion, self.origin_load)
            if not math.isnan(value)
        ]
        return min(defined) if defined else float("nan")

    def max(self) -> float:
        """Best (largest) improvement across the three metrics.

        NaN metrics are skipped, mirroring :meth:`min`.
        """
        defined = [
            value
            for value in (self.latency, self.congestion, self.origin_load)
            if not math.isnan(value)
        ]
        return max(defined) if defined else float("nan")


def _percent_reduction(baseline: float, value: float) -> float:
    """Percentage reduction of ``value`` relative to ``baseline``.

    A non-positive baseline makes the reduction *undefined*, not zero:
    a degenerate workload whose no-cache congestion is already 0 gives
    no information about an architecture's improvement.  Returning 0.0
    here (the old behaviour) silently dragged sweep aggregates toward
    "no improvement"; NaN instead propagates visibly through
    :func:`improvements`, :func:`gap`, and any mean/percentile a
    caller computes, and :meth:`Improvements.min`/:meth:`~Improvements.max`
    skip it explicitly.
    """
    if baseline <= 0:
        return float("nan")
    return 100.0 * (baseline - value) / baseline


def improvements(result: SimulationResult, baseline: SimulationResult) -> Improvements:
    """Normalize ``result`` against the no-cache ``baseline``."""
    if result.num_requests != baseline.num_requests:
        raise ValueError(
            "result and baseline measured different request counts: "
            f"{result.num_requests} vs {baseline.num_requests}"
        )
    return Improvements(
        latency=_percent_reduction(baseline.mean_latency, result.mean_latency),
        congestion=_percent_reduction(
            baseline.max_link_transfers, result.max_link_transfers
        ),
        origin_load=_percent_reduction(
            baseline.max_origin_load, result.max_origin_load
        ),
    )


def merge_results(results: Sequence[SimulationResult]) -> SimulationResult:
    """Sum per-shard results into the whole-stream result.

    Every counter in a :class:`SimulationResult` is additive over a
    partition of the request stream (the maxima are *derived* from the
    summed per-link / per-origin arrays, not maxed across shards), so
    the merge loses nothing the shards measured; whether the merged
    result equals the unsharded run depends only on whether each
    request saw the same outcome in its shard (exact for the stateless
    no-cache baseline — see
    :func:`~repro.core.sweep.merge_sharded_results`).  All inputs must
    agree on the architecture name and array shapes.
    """
    if not results:
        raise ValueError("cannot merge zero results")
    first = results[0]
    for other in results[1:]:
        if other.architecture != first.architecture:
            raise ValueError(
                "cannot merge results for different architectures: "
                f"{first.architecture!r} vs {other.architecture!r}"
            )
        if len(other.link_transfers) != len(first.link_transfers) or len(
            other.origin_serves
        ) != len(first.origin_serves):
            raise ValueError("cannot merge results over different networks")
    link_transfers = np.zeros_like(first.link_transfers)
    origin_serves = np.zeros_like(first.origin_serves)
    for result in results:
        link_transfers += result.link_transfers
        origin_serves += result.origin_serves
    return SimulationResult.from_counters(
        architecture=first.architecture,
        num_requests=sum(r.num_requests for r in results),
        total_latency=float(sum(r.total_latency for r in results)),
        link_transfers=link_transfers,
        origin_serves=origin_serves,
        cache_served=sum(r.cache_served for r in results),
        coop_served=sum(r.coop_served for r in results),
        fallback_served=sum(r.fallback_served for r in results),
    )


def gap(a: Improvements, b: Improvements) -> Improvements:
    """Per-metric difference ``a - b`` (e.g. ICN-NR minus EDGE).

    A metric that is undefined (NaN) on either side stays NaN in the
    gap — both sides were normalized against the same degenerate
    baseline, so the difference carries no information either.
    """
    return Improvements(
        latency=a.latency - b.latency,
        congestion=a.congestion - b.congestion,
        origin_load=a.origin_load - b.origin_load,
    )


class MetricsCollector:
    """Accumulates per-request observations during a simulation run."""

    def __init__(self, num_links: int, num_pops: int) -> None:
        self.num_requests = 0
        self.total_latency = 0.0
        self.cache_served = 0
        self.coop_served = 0
        self.fallback_served = 0
        self.link_transfers = np.zeros(num_links, dtype=np.float64)
        self.origin_serves = np.zeros(num_pops, dtype=np.float64)

    def record(
        self,
        latency: float,
        links: list[int],
        size: float,
        origin_pop: int | None,
        coop: bool,
        fallback: bool = False,
    ) -> None:
        """Record one measured request.

        ``origin_pop`` is the serving origin (None for cache hits);
        ``coop`` marks requests served via scoped sibling cooperation;
        ``fallback`` marks requests that routed around a failed cache
        node before being served.
        """
        self.num_requests += 1
        self.total_latency += latency
        for link in links:
            self.link_transfers[link] += size
        if fallback:
            self.fallback_served += 1
        if origin_pop is None:
            if coop:
                self.coop_served += 1
            else:
                self.cache_served += 1
        else:
            self.origin_serves[origin_pop] += 1

    def result(self, architecture: str) -> SimulationResult:
        """Freeze the accumulated counters into a result."""
        return SimulationResult.from_counters(
            architecture=architecture,
            num_requests=self.num_requests,
            total_latency=self.total_latency,
            link_transfers=self.link_transfers,
            origin_serves=self.origin_serves,
            cache_served=self.cache_served,
            coop_served=self.coop_served,
            fallback_served=self.fallback_served,
        )
