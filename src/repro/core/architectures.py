"""The caching design space (Section 3) and its representative designs.

An :class:`Architecture` fixes the three knobs the paper varies:

* **cache placement** — which access-tree levels carry caches
  (pervasive, edge-only, edge plus one level, ...);
* **request routing** — shortest path toward the origin vs.
  nearest-replica;
* **cooperation** — optional scoped sibling lookup
  ("EDGE-Coop ... each router does a scoped lookup to check if its
  sibling in the access tree has the object").

plus the budget adjustments of Sections 4 and 5 (EDGE-Norm's total-
budget normalization, Figure 10's budget doubling, and the Inf-Budget
reference point).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..topology.access_tree import AccessTree

PLACEMENTS = ("pervasive", "edge", "two_levels")
#: "sp" walks the shortest path toward the origin; "nr" additionally
#: serves from the nearest replica within the path's scope (each path
#: node plus its siblings, in exact distance order); "nr-global" is a
#: true zero-cost oracle over every cache in the network.  The paper's
#: reported ICN-NR numbers (NR adds ~2% over SP; gap vs EDGE bounded by
#: 17% even in the best case; Table 4's arity trend) are only consistent
#: with the scoped behaviour — a global oracle can exploit the union of
#: all edge caches as one giant distributed store and beats EDGE by
#: 30-45% on congestion/origin load.  We therefore model ICN-NR as the
#: scoped search and expose the oracle separately (ICN-NR-Global) as an
#: ablation; see DESIGN.md and EXPERIMENTS.md.
ROUTINGS = ("sp", "nr", "nr-global")

#: On-path insertion policies.  The paper uses leave-copy-everywhere
#: ("each node on the response path ... stores the object"); LCD
#: (leave-copy-down: only the first cache below the serving node takes a
#: copy) and probabilistic insertion are the standard ICN alternatives,
#: provided as ablations of that design choice.
INSERTIONS = ("everywhere", "lcd", "probabilistic")


@dataclass(frozen=True)
class Architecture:
    """One point in the cache placement x routing design space."""

    name: str
    placement: str = "pervasive"
    routing: str = "sp"
    cooperation: bool = False
    #: Extra multiplier on every instantiated cache's budget.
    budget_multiplier: float = 1.0
    #: Rescale budgets so the total equals the pervasive deployment's
    #: total (EDGE-Norm: "multiply the budget of the edge caches by an
    #: appropriate constant ... so the total cache capacity is the same").
    normalize_budget: bool = False
    #: Give every instantiated cache unbounded capacity (Inf-Budget).
    infinite: bool = False
    #: On-path insertion policy (see :data:`INSERTIONS`).
    insertion: str = "everywhere"
    #: Insertion probability when ``insertion == "probabilistic"``.
    insertion_probability: float = 0.5

    def __post_init__(self) -> None:
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r}; choose from {PLACEMENTS}"
            )
        if self.routing not in ROUTINGS:
            raise ValueError(
                f"unknown routing {self.routing!r}; choose from {ROUTINGS}"
            )
        if self.budget_multiplier <= 0:
            raise ValueError("budget_multiplier must be > 0")
        if self.insertion not in INSERTIONS:
            raise ValueError(
                f"unknown insertion {self.insertion!r}; choose from "
                f"{INSERTIONS}"
            )
        if not 0.0 <= self.insertion_probability <= 1.0:
            raise ValueError("insertion_probability must be in [0, 1]")

    def cache_depths(self, tree: AccessTree) -> tuple[int, ...]:
        """Tree depths that carry caches under this placement."""
        if self.placement == "pervasive":
            return tuple(range(tree.depth + 1))
        if self.placement == "edge":
            return (tree.depth,)
        # two_levels: the edge and the level just above it.
        if tree.depth == 0:
            return (0,)
        return (tree.depth - 1, tree.depth)

    def cache_locals(self, tree: AccessTree) -> list[int]:
        """Tree-local indices of cache-enabled nodes."""
        locals_: list[int] = []
        for depth in self.cache_depths(tree):
            locals_.extend(tree.level_nodes(depth))
        return locals_

    def effective_multiplier(self, tree: AccessTree) -> float:
        """Total budget scaling applied to each instantiated cache.

        With ``normalize_budget`` the per-cache budget is scaled by
        ``tree.size / num_cache_nodes`` so the placement's total equals a
        pervasive deployment's total (on binary trees with edge placement
        this is the paper's "multiply ... by 2" example, approximately).
        """
        multiplier = self.budget_multiplier
        if self.normalize_budget:
            multiplier *= tree.size / len(self.cache_locals(tree))
        return multiplier


# ---------------------------------------------------------------------------
# The named designs used throughout the paper.
# ---------------------------------------------------------------------------

#: Pervasive caching, shortest-path-to-origin routing.
ICN_SP = Architecture("ICN-SP", placement="pervasive", routing="sp")
#: Pervasive caching with (zero-cost) nearest-replica routing.
ICN_NR = Architecture("ICN-NR", placement="pervasive", routing="nr")
#: Ablation: nearest-replica routing with a network-wide oracle.
ICN_NR_GLOBAL = Architecture(
    "ICN-NR-Global", placement="pervasive", routing="nr-global"
)
#: Caches only at the access-tree leaves.
EDGE = Architecture("EDGE", placement="edge", routing="sp")
#: EDGE with scoped sibling cooperation.
EDGE_COOP = Architecture("EDGE-Coop", placement="edge", routing="sp",
                         cooperation=True)
#: EDGE with budgets rescaled to the pervasive total.
EDGE_NORM = Architecture("EDGE-Norm", placement="edge", routing="sp",
                         normalize_budget=True)

#: Figure 6/7 line-up, in legend order.
BASELINE_ARCHITECTURES = (ICN_SP, ICN_NR, EDGE, EDGE_COOP, EDGE_NORM)

#: Figure 10's EDGE variants, in x-axis order ("Baseline" is plain EDGE).
EDGE_VARIANTS = (
    replace(EDGE, name="Baseline"),
    Architecture("2-Levels", placement="two_levels", routing="sp"),
    replace(EDGE_COOP, name="Coop"),
    Architecture("2-Levels-Coop", placement="two_levels", routing="sp",
                 cooperation=True),
    replace(EDGE_NORM, name="Norm"),
    Architecture("Norm-Coop", placement="edge", routing="sp",
                 cooperation=True, normalize_budget=True),
    Architecture("Double-Budget-Coop", placement="edge", routing="sp",
                 cooperation=True, normalize_budget=True, budget_multiplier=2.0),
)

#: Infinite-cache reference points (Figure 10, "Inf-Budget").
EDGE_INF = Architecture("EDGE-Inf", placement="edge", routing="sp", infinite=True)
ICN_NR_INF = Architecture("ICN-NR-Inf", placement="pervasive", routing="nr",
                          infinite=True)

_REGISTRY = {
    arch.name: arch
    for arch in (
        *BASELINE_ARCHITECTURES,
        *EDGE_VARIANTS,
        ICN_NR_GLOBAL,
        EDGE_INF,
        ICN_NR_INF,
    )
}


def architecture(name: str) -> Architecture:
    """Look up a named design (e.g. 'ICN-NR', 'EDGE-Coop', '2-Levels')."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown architecture {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
