"""Experiment orchestration: one config, many architectures, one workload.

This is the layer the benchmarks drive.  An :class:`ExperimentConfig`
captures every knob the paper varies (topology, tree shape, Zipf alpha,
spatial skew, budget fraction and split, latency model, policy, serving
capacity, object sizes); :func:`run_experiment` builds the network and a
single shared workload, runs the no-cache baseline plus each requested
architecture over it, and returns normalized improvements.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..cache.budget import node_budgets
from ..topology.access_tree import AccessTree
from ..topology.datasets import topology as load_topology
from ..topology.network import Network
from ..topology.pop import PopTopology
from ..workload.generator import (
    Workload,
    generate_workload,
    workload_from_objects,
)
from ..workload.sizes import lognormal_sizes, normalized_sizes
from ..workload.stream import (
    DEFAULT_CHUNK_SIZE,
    StreamingWorkload,
    pop_shard,
    stream_workload,
)
from .architectures import Architecture, BASELINE_ARCHITECTURES
from .capacity import CapacityModel
from .engine import Simulator, simulate_no_cache
from .latency import hop_costs as build_hop_costs
from .metrics import Improvements, SimulationResult, gap, improvements

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.sink import Observer

#: Best-fit exponent of the Asia CDN trace, the paper's baseline workload.
ASIA_ALPHA = 1.04


@dataclass(frozen=True)
class ExperimentConfig:
    """All simulation knobs with the paper's Section 4 baseline defaults."""

    topology: str = "att"
    arity: int = 2
    tree_depth: int = 5
    num_objects: int = 2_000
    num_requests: int = 400_000
    alpha: float = ASIA_ALPHA
    spatial_skew: float = 0.0
    budget_fraction: float = 0.05
    budget_split: str = "proportional"
    origin_mode: str = "proportional"
    policy: str = "lru"
    latency_model: str = "unit"
    core_latency_factor: float = 4.0
    heterogeneous_sizes: bool = False
    capacity: CapacityModel | None = None
    warmup_fraction: float = 0.2
    seed: int = 2013

    def with_(self, **changes: object) -> "ExperimentConfig":
        """A modified copy (sweep helper)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class ExperimentResult:
    """Baseline plus per-architecture results for one configuration."""

    config: ExperimentConfig
    baseline: SimulationResult
    results: dict[str, SimulationResult] = field(default_factory=dict)
    improvements: dict[str, Improvements] = field(default_factory=dict)

    def gap(self, a: str = "ICN-NR", b: str = "EDGE") -> Improvements:
        """Per-metric improvement gap between two architectures."""
        return gap(self.improvements[a], self.improvements[b])


def build_network(config: ExperimentConfig,
                  pop_topology: PopTopology | None = None) -> Network:
    """Instantiate the router-level network for a configuration."""
    if pop_topology is None:
        pop_topology = load_topology(config.topology)
    tree = AccessTree(arity=config.arity, depth=config.tree_depth)
    return Network(pop_topology, tree)


def build_workload(
    config: ExperimentConfig,
    network: Network,
    objects: np.ndarray | None = None,
) -> Workload:
    """Generate (or wrap) the request stream for a configuration.

    Pass ``objects`` to run trace-driven: the object sequence comes from
    a log, while arrivals and origins follow the configured models.
    """
    rng = np.random.default_rng(config.seed)
    sizes = None
    if config.heterogeneous_sizes:
        sizes = normalized_sizes(lognormal_sizes(config.num_objects, rng))
    if objects is not None:
        return workload_from_objects(
            network,
            objects,
            config.num_objects,
            rng,
            sizes=sizes,
            origin_mode=config.origin_mode,
        )
    return generate_workload(
        network,
        config.num_objects,
        config.num_requests,
        config.alpha,
        rng,
        spatial_skew=config.spatial_skew,
        sizes=sizes,
        origin_mode=config.origin_mode,
    )


def build_streaming_workload(
    config: ExperimentConfig,
    network: Network,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> StreamingWorkload:
    """Streaming twin of :func:`build_workload` (generated workloads).

    Consumes ``config.seed`` exactly as :func:`build_workload` does, so
    the chunked stream is bit-identical to the materialized workload's
    request columns while peak memory stays O(catalog + chunk).
    """
    rng = np.random.default_rng(config.seed)
    sizes = None
    if config.heterogeneous_sizes:
        sizes = normalized_sizes(lognormal_sizes(config.num_objects, rng))
    return stream_workload(
        network,
        config.num_objects,
        config.num_requests,
        config.alpha,
        rng,
        spatial_skew=config.spatial_skew,
        sizes=sizes,
        origin_mode=config.origin_mode,
        chunk_size=chunk_size,
    )


def _run_architectures(
    config: ExperimentConfig,
    network: Network,
    workload: "Workload | StreamingWorkload",
    architectures: Iterable[Architecture],
    engine: str,
    observer: "Observer | None",
) -> ExperimentResult:
    """Shared experiment body: no-cache baseline plus each architecture.

    Both the materialized (:func:`run_experiment`) and streamed
    (:func:`run_streamed_experiment`) fronts funnel through here, so
    the two paths cannot drift apart in how runs are wired.
    """
    costs = build_hop_costs(
        network, config.latency_model, config.core_latency_factor
    )
    budgets = node_budgets(
        network, config.budget_fraction, config.num_objects, config.budget_split
    )
    baseline = simulate_no_cache(
        network,
        workload,
        costs,
        warmup_fraction=config.warmup_fraction,
        engine=engine,
        observer=observer,
    )
    results: dict[str, SimulationResult] = {}
    improved: dict[str, Improvements] = {}
    for architecture in architectures:
        simulator = Simulator(
            network,
            architecture,
            workload,
            budgets,
            policy=config.policy,
            hop_costs=costs,
            capacity=config.capacity,
            warmup_fraction=config.warmup_fraction,
            engine=engine,
            observer=observer,
        )
        result = simulator.run()
        results[architecture.name] = result
        improved[architecture.name] = improvements(result, baseline)
    return ExperimentResult(
        config=config, baseline=baseline, results=results, improvements=improved
    )


def run_experiment(
    config: ExperimentConfig,
    architectures: Iterable[Architecture] = BASELINE_ARCHITECTURES,
    objects: np.ndarray | None = None,
    pop_topology: PopTopology | None = None,
    engine: str = "reference",
    observer: "Observer | None" = None,
) -> ExperimentResult:
    """Run the baseline and every architecture over one shared workload.

    ``engine`` selects the simulation engine ("reference" or "fast");
    both produce identical results, so it only changes wall-clock time.
    ``observer`` attaches an optional :class:`repro.obs.Observer` to the
    baseline and every architecture run (observation never changes
    simulated numbers).
    """
    network = build_network(config, pop_topology)
    workload = build_workload(config, network, objects=objects)
    return _run_architectures(
        config, network, workload, architectures, engine, observer
    )


def run_streamed_experiment(
    config: ExperimentConfig,
    architectures: Iterable[Architecture] = BASELINE_ARCHITECTURES,
    shard: tuple[int, int] | None = None,
    pop_topology: PopTopology | None = None,
    engine: str = "fast",
    observer: "Observer | None" = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> ExperimentResult:
    """Streamed twin of :func:`run_experiment`: same numbers, O(chunk) memory.

    The request stream is regenerated chunk by chunk from
    ``config.seed`` instead of materialized, so results are
    field-for-field identical to :func:`run_experiment` on the same
    config while the request columns never exist in full.

    ``shard=(i, n)`` restricts the run to the sub-stream of requests
    arriving at PoPs with ``pop % n == i`` — the unit :func:`repro.core.sweep.shard_points`
    distributes across sweep workers.  Each worker regenerates the
    seed-derived stream and filters it locally, so no request arrays
    ever cross a process boundary; the shards partition the stream
    exactly, and at ``warmup_fraction=0`` their merged no-cache
    baselines (:func:`repro.core.metrics.merge_results`) equal the
    whole-stream baseline bit for bit.
    """
    network = build_network(config, pop_topology)
    workload: StreamingWorkload = build_streaming_workload(
        config, network, chunk_size=chunk_size
    )
    if shard is not None:
        index, num_shards = shard
        workload = pop_shard(workload, index, num_shards)
    return _run_architectures(
        config, network, workload, architectures, engine, observer
    )


def performance_gap(
    config: ExperimentConfig,
    arch_a: Architecture,
    arch_b: Architecture,
    objects: np.ndarray | None = None,
) -> Improvements:
    """Convenience: run just two architectures and return their gap."""
    outcome = run_experiment(config, (arch_a, arch_b), objects=objects)
    return outcome.gap(arch_a.name, arch_b.name)
