"""Request-level cache-network simulator (Section 4.1).

"For reasons of scalability, we use a request-level simulator and thus
we do not model packet-level, TCP, or router queueing effects."  Each
request is (arrival PoP, arrival leaf, object); the engine

1. finds the serving node under the architecture's routing —
   shortest-path-to-origin with optional scoped sibling cooperation, or
   the nearest-replica oracle;
2. charges latency (hop costs from the serving node to the leaf),
   congestion (one object transfer per response-path link), and origin
   load when the origin store served;
3. stores the object at every cache-enabled node on the response path
   ("each node on the response path ... stores the object in addition
   to forwarding it towards the client").

Lookup/discovery is free for ICN designs, as the paper conservatively
assumes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Hashable

import numpy as np

from ..cache import Cache, InfiniteCache, make_cache
from ..topology.network import HopCosts, Network
from ..workload.generator import Workload
from ..workload.stream import StreamingWorkload
from .architectures import Architecture
from .capacity import CapacityModel, CapacityTracker
from .metrics import MetricsCollector, SimulationResult
from .routing import ReplicaDirectory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.sink import Observer

#: Available execution engines.  "reference" is the readable per-request
#: loop below; "fast" is the flat-array engine of
#: :mod:`repro.core.fastpath`, which produces field-for-field identical
#: :class:`SimulationResult` objects (pinned by the differential suite).
ENGINES = ("reference", "fast")

#: Pinned seed for the probabilistic-insertion coin flips.  Deliberately
#: a fixed algorithmic constant, independent of the experiment seed: the
#: insertion stream must be identical across engines and runs for the
#: differential suite's field-for-field equality.  ``core/fastpath.py``
#: pins the same value.
_INSERT_SEED = 0xC0FFEE


def _stream_bounds(
    workload: Workload | StreamingWorkload, warmup_fraction: float
) -> tuple[int, int]:
    """Resolve ``(num_requests, first_measured)`` for a request stream.

    A :class:`StreamingWorkload` may not know its length up front
    (``num_requests is None``); that is only workable with no warmup,
    because the warmup boundary is an absolute request index.  The
    resolved length is then reported as 0 (e.g. in observer run
    headers) and every request is measured.
    """
    num_requests = workload.num_requests
    if num_requests is None:
        if warmup_fraction != 0.0:
            raise ValueError(
                "warmup_fraction > 0 requires a stream of known length; "
                "this StreamingWorkload has num_requests=None"
            )
        return 0, 0
    return num_requests, int(warmup_fraction * num_requests)


class Simulator:
    """Runs one architecture over one workload on one network."""

    def __init__(
        self,
        network: Network,
        architecture: Architecture,
        workload: Workload | StreamingWorkload,
        budgets: list[float],
        policy: str = "lru",
        hop_costs: HopCosts | None = None,
        capacity: CapacityModel | None = None,
        warmup_fraction: float = 0.0,
        preload: dict[int, list[int]] | None = None,
        frozen_caches: bool = False,
        failed_nodes: frozenset[int] | set[int] | tuple[int, ...] = (),
        engine: str = "reference",
        observer: "Observer | None" = None,
    ) -> None:
        """See the module docstring for the simulation semantics.

        ``preload`` maps global node ids to objects inserted before the
        first request; with ``frozen_caches`` the response path performs
        no insertions, turning the run into a *static placement*
        evaluation (used by the LRU-vs-optimal ablation — Section 3's
        "the LRU policy performs near-optimally").

        ``failed_nodes`` marks cache nodes as crashed: they get no cache,
        never serve, take no response-path copies, and routing walks past
        them; requests that skip a failed node are reported via the
        ``fallback_served`` counter (availability accounting).  Origins
        are never failed — the origin store at a failed root still
        answers, matching the paper's always-available origin model.

        ``engine`` selects the execution strategy: "reference" runs the
        readable per-request loop in this module; "fast" runs the flat-
        array engine (:mod:`repro.core.fastpath`) with identical output.
        The fast engine rebuilds its state from this constructor's
        configuration on every :meth:`run` call, so each fast run starts
        from the post-preload state (the reference engine instead keeps
        mutating ``self.caches`` across repeated runs).

        ``observer`` attaches an optional :class:`repro.obs.Observer`.
        With one attached, each :meth:`run` records per-node serve /
        copy / eviction counters, per-link and per-origin tallies, and
        (when the observer carries a tracer) sampled per-request trace
        records.  Observation never touches simulation state or any
        RNG, so results are bit-identical with or without it; preload
        insertions happen before the run opens and are not counted.
        """
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {ENGINES}"
            )
        if len(budgets) != network.num_nodes:
            raise ValueError("budgets must have one entry per network node")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        self._failed = frozenset(int(n) for n in failed_nodes)
        for node in sorted(self._failed):
            if not 0 <= node < network.num_nodes:
                raise ValueError(f"failed node {node} outside the network")
        self.network = network
        self.architecture = architecture
        self.workload = workload
        self.costs = hop_costs if hop_costs is not None else network.unit_hop_costs()
        self.warmup_fraction = warmup_fraction
        self.engine = engine
        self.policy = policy
        self.observer = observer

        tree = network.tree
        self._tree_size = network.tree_size
        cache_locals = architecture.cache_locals(tree)
        self._cache_local_set = frozenset(cache_locals)
        multiplier = architecture.effective_multiplier(tree)
        self.caches: dict[int, Cache] = {}
        for pop in range(network.num_pops):
            base = pop * self._tree_size
            for local in cache_locals:
                node = base + local
                if node in self._failed:
                    continue  # a crashed node carries no cache
                if architecture.infinite:
                    self.caches[node] = InfiniteCache()
                else:
                    self.caches[node] = make_cache(
                        policy, budgets[node] * multiplier
                    )
        self.directory = (
            ReplicaDirectory(network, failed_nodes=self._failed)
            if architecture.routing == "nr-global"
            else None
        )
        self._nr_scope_order = (
            self._build_nr_scope_order() if architecture.routing == "nr" else None
        )
        # Cache-enabled siblings per tree-local index, for scoped cooperation.
        self._coop_siblings: tuple[tuple[int, ...], ...] = tuple(
            tuple(s for s in tree.siblings(local) if s in self._cache_local_set)
            if architecture.cooperation
            else ()
            for local in range(tree.size)
        )
        self._capacity = (
            CapacityTracker(capacity, network.num_nodes) if capacity else None
        )
        self._chains = network._chain  # tree-local path-to-root per local index
        self.frozen_caches = frozen_caches
        self._preload = preload
        if preload:
            sizes = workload.sizes
            for node, objs in preload.items():
                if node not in self.caches:
                    raise ValueError(
                        f"cannot preload node {node}: no cache placed there"
                    )
                for obj in objs:
                    self._insert(node, int(obj), float(sizes[obj]))

    def run(self) -> SimulationResult:
        """Simulate the full request stream and return measured aggregates."""
        if self.engine == "fast":
            from .fastpath import FastEngine

            return FastEngine(self).run()
        network = self.network
        workload = self.workload
        tree_size = self._tree_size
        sizes = workload.sizes
        origins = workload.origins
        costs = self.costs
        num_requests, first_measured = _stream_bounds(
            workload, self.warmup_fraction
        )
        collector = MetricsCollector(network.num_links, network.num_pops)
        if self.architecture.routing == "nr-global":
            route = self._route_nr_global
        elif self.architecture.routing == "nr":
            route = self._route_nr_scoped
        else:
            route = self._route_sp
        path_cost = network.path_cost
        path_links = network.path_links
        path_nodes = network.path_nodes
        cache_local_set = self._cache_local_set
        insert = self._insert
        insertion = self.architecture.insertion
        insert_probability = self.architecture.insertion_probability
        insert_rng = np.random.default_rng(_INSERT_SEED)

        failed = self._failed
        observer = self.observer
        rec = None
        trace_wants: Callable[[int], bool] | None = None
        trace_emit = None
        if observer is not None:
            rec = observer.start_run(
                self.architecture.name,
                self.architecture.routing,
                network.num_nodes,
                num_requests,
                first_measured,
            )
            if observer.tracer is not None:
                trace_wants = observer.tracer.wants
                trace_emit = observer.tracer.emit_request
            rec_copies = rec.copies
            rec_evicts = rec.evictions
            bare_insert = insert

            def counting_insert(
                node: int,
                obj: int,
                size: float,
                _insert: Callable[[int, int, float], list[Hashable]] = bare_insert,
            ) -> list[Hashable]:
                rec_copies[node] += 1
                evicted = _insert(node, obj, size)
                rec_evicts[node] += len(evicted)
                return evicted

            insert = counting_insert
        # The request stream arrives in chunks (a materialized workload
        # yields exactly one); `i` is the running global request index,
        # so warmup and trace sampling are chunk-boundary agnostic.
        i = 0
        for req_chunk in workload.chunks():
            for pop, leaf_local, obj in zip(
                req_chunk.pops.tolist(),
                req_chunk.leaves.tolist(),
                req_chunk.objects.tolist(),
            ):
                origin_pop = int(origins[obj])
                serving, served_origin_pop, coop, fallback = route(
                    pop, leaf_local, obj, origin_pop, i
                )
                leaf_gid = pop * tree_size + leaf_local
                if i >= first_measured:
                    if serving == leaf_gid:
                        collector.record(
                            0.0, [], sizes[obj], served_origin_pop, coop, fallback
                        )
                    else:
                        collector.record(
                            path_cost(serving, leaf_gid, costs),
                            path_links(serving, leaf_gid),
                            sizes[obj],
                            served_origin_pop,
                            coop,
                            fallback,
                        )
                if rec is not None:
                    if i >= first_measured:
                        rec.serves[serving] += 1
                    if trace_wants is not None and trace_wants(i):
                        assert trace_emit is not None
                        trace_emit(
                            i,
                            pop,
                            leaf_local,
                            obj,
                            serving,
                            served_origin_pop,
                            0.0
                            if serving == leaf_gid
                            else path_cost(serving, leaf_gid, costs),
                            float(sizes[obj]),
                            coop,
                            fallback,
                        )
                if serving != leaf_gid and not self.frozen_caches:
                    size = sizes[obj]
                    if insertion == "everywhere":
                        for node in path_nodes(serving, leaf_gid)[1:]:
                            if (
                                node % tree_size in cache_local_set
                                and node not in failed
                            ):
                                insert(node, obj, size)
                    elif insertion == "lcd":
                        # Leave-copy-down: only the first cache below the
                        # serving node takes a copy, so popular objects
                        # migrate toward the edge one level per request.
                        for node in path_nodes(serving, leaf_gid)[1:]:
                            if (
                                node % tree_size in cache_local_set
                                and node not in failed
                            ):
                                insert(node, obj, size)
                                break
                    else:  # probabilistic
                        for node in path_nodes(serving, leaf_gid)[1:]:
                            if (
                                node % tree_size in cache_local_set
                                and node not in failed
                                and insert_rng.random() < insert_probability
                            ):
                                insert(node, obj, size)
                i += 1
        result = collector.result(self.architecture.name)
        if observer is not None and rec is not None:
            observer.finish_run(rec, result)
        return result

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route_sp(
        self, pop: int, leaf_local: int, obj: int, origin_pop: int, i: int
    ) -> tuple[int, int | None, bool, bool]:
        """Shortest path toward the origin; first cache on the path serves."""
        tree_size = self._tree_size
        caches = self.caches
        cache_local_set = self._cache_local_set
        capacity = self._capacity
        cooperation = self.architecture.cooperation
        failed = self._failed
        fallback = False
        base = pop * tree_size
        for local in self._chains[leaf_local]:
            if local == 0 and origin_pop == pop:
                break  # reached the origin store
            if local in cache_local_set:
                node = base + local
                if node in failed:
                    fallback = True  # walk past the dead cache
                    continue
                if caches[node].lookup(obj):
                    if capacity is None or capacity.try_serve(node, i):
                        return node, None, False, fallback
                elif cooperation:
                    for sibling_local in self._coop_siblings[local]:
                        sibling = base + sibling_local
                        if sibling in failed:
                            continue
                        if caches[sibling].lookup(obj) and (
                            capacity is None or capacity.try_serve(sibling, i)
                        ):
                            return sibling, None, True, fallback
        if origin_pop != pop:
            root_cached = 0 in cache_local_set
            for transit_pop in self.network.core_path(pop, origin_pop)[1:]:
                if transit_pop == origin_pop:
                    break
                if root_cached:
                    node = transit_pop * tree_size
                    if node in failed:
                        fallback = True
                        continue
                    if caches[node].lookup(obj) and (
                        capacity is None or capacity.try_serve(node, i)
                    ):
                        return node, None, False, fallback
        origin_root = origin_pop * tree_size
        if capacity is not None:
            capacity.force_serve(origin_root, i)
        return origin_root, origin_pop, False, fallback

    def _build_nr_scope_order(self) -> tuple[tuple[tuple[int, int], ...], ...]:
        """Distance-ordered scoped-NR candidates per tree-local leaf.

        The scope is every node on the leaf's path to the root plus each
        path node's siblings; entries are (distance, local) sorted by
        exact tree distance with on-path nodes winning ties.
        """
        tree = self.network.tree
        orders: list[tuple[tuple[int, int], ...]] = []
        for local in range(tree.size):
            if not tree.is_leaf(local):
                orders.append(())
                continue
            leaf_depth = tree.depth_of(local)
            entries: list[tuple[int, int, int]] = []
            for node in tree.path_to_root(local):
                dist = leaf_depth - tree.depth_of(node)
                entries.append((dist, 0, node))
                for sibling in tree.siblings(node):
                    entries.append((dist + 2, 1, sibling))
            entries.sort()
            orders.append(tuple((dist, node) for dist, _, node in entries))
        return tuple(orders)

    def _route_nr_scoped(
        self, pop: int, leaf_local: int, obj: int, origin_pop: int, i: int
    ) -> tuple[int, int | None, bool, bool]:
        """Nearest replica within the request path's scope.

        Candidates are the path nodes and their siblings, visited in
        exact distance order, then transit PoP roots along the core
        path; the origin serves when no scoped replica is closer.
        Failed candidates are skipped (and flagged as fallbacks).
        """
        tree_size = self._tree_size
        caches = self.caches
        cache_local_set = self._cache_local_set
        capacity = self._capacity
        failed = self._failed
        fallback = False
        base = pop * tree_size
        own_origin = origin_pop == pop
        origin_tree_dist = self.network.tree.depth_of(leaf_local)
        for dist, local in self._nr_scope_order[leaf_local]:
            if own_origin and dist >= origin_tree_dist:
                break  # the origin store (at the root) is at least as close
            if local in cache_local_set:
                node = base + local
                if node in failed:
                    fallback = True
                    continue
                if caches[node].lookup(obj) and (
                    capacity is None or capacity.try_serve(node, i)
                ):
                    return node, None, False, fallback
        if not own_origin and 0 in cache_local_set:
            for transit_pop in self.network.core_path(pop, origin_pop)[1:]:
                if transit_pop == origin_pop:
                    break
                node = transit_pop * tree_size
                if node in failed:
                    fallback = True
                    continue
                if caches[node].lookup(obj) and (
                    capacity is None or capacity.try_serve(node, i)
                ):
                    return node, None, False, fallback
        origin_root = origin_pop * tree_size
        if capacity is not None:
            capacity.force_serve(origin_root, i)
        return origin_root, origin_pop, False, fallback

    def _route_nr_global(
        self, pop: int, leaf_local: int, obj: int, origin_pop: int, i: int
    ) -> tuple[int, int | None, bool, bool]:
        """Nearest-replica oracle over every cache; falls back to the origin.

        The directory never records replicas at failed nodes, so the
        oracle routes around failures implicitly; no fallback flag is
        raised because no dead candidate is ever offered and skipped.
        """
        tree_size = self._tree_size
        leaf_gid = pop * tree_size + leaf_local
        origin_root = origin_pop * tree_size
        origin_dist = self.network.distance(leaf_gid, origin_root)
        found = self.directory.nearest(obj, leaf_gid)
        if found is not None:
            node, dist = found
            # Prefer the replica on ties: same latency, less origin load.
            if dist <= origin_dist:
                self.caches[node].lookup(obj)
                capacity = self._capacity
                if capacity is None or capacity.try_serve(node, i):
                    return node, None, False, False
        if self._capacity is not None:
            self._capacity.force_serve(origin_root, i)
        return origin_root, origin_pop, False, False

    # ------------------------------------------------------------------
    # Cache insertion
    # ------------------------------------------------------------------
    def _insert(self, node: int, obj: int, size: float) -> list[Hashable]:
        """Insert ``obj`` at ``node``; returns the evicted objects."""
        cache = self.caches[node]
        directory = self.directory
        if directory is None:
            return cache.insert(obj, size)
        was_cached = obj in cache
        evicted = cache.insert(obj, size)
        for victim in evicted:
            directory.remove(victim, node)
        if not was_cached and obj in cache:
            directory.add(obj, node)
        return evicted

    @property
    def capacity_rejections(self) -> int:
        """Requests redirected because a cache was overloaded."""
        return self._capacity.rejections if self._capacity else 0


def simulate_no_cache(
    network: Network,
    workload: Workload | StreamingWorkload,
    hop_costs: HopCosts | None = None,
    warmup_fraction: float = 0.0,
    engine: str = "reference",
    observer: "Observer | None" = None,
) -> SimulationResult:
    """The normalization baseline: every request is served by its origin."""
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    costs = hop_costs if hop_costs is not None else network.unit_hop_costs()
    if engine == "fast":
        from .fastpath import fast_no_cache

        return fast_no_cache(
            network, workload, costs, warmup_fraction, observer=observer
        )
    tree_size = network.tree_size
    collector = MetricsCollector(network.num_links, network.num_pops)
    sizes = workload.sizes
    origins = workload.origins
    num_requests, first_measured = _stream_bounds(workload, warmup_fraction)
    rec = None
    trace_wants: Callable[[int], bool] | None = None
    trace_emit = None
    if observer is not None:
        rec = observer.start_run(
            "NO-CACHE", "origin", network.num_nodes, num_requests, first_measured
        )
        if observer.tracer is not None:
            trace_wants = observer.tracer.wants
            trace_emit = observer.tracer.emit_request
    i = 0
    for req_chunk in workload.chunks():
        n = len(req_chunk)
        if i + n <= first_measured:
            i += n  # the whole chunk is warmup: skip it wholesale
            continue
        for pop, leaf_local, obj in zip(
            req_chunk.pops.tolist(),
            req_chunk.leaves.tolist(),
            req_chunk.objects.tolist(),
        ):
            if i < first_measured:
                i += 1
                continue
            origin_pop = int(origins[obj])
            leaf_gid = pop * tree_size + leaf_local
            origin_root = origin_pop * tree_size
            cost = network.path_cost(origin_root, leaf_gid, costs)
            collector.record(
                cost,
                network.path_links(origin_root, leaf_gid),
                sizes[obj],
                origin_pop,
                False,
            )
            if rec is not None:
                rec.serves[origin_root] += 1
                if trace_wants is not None and trace_wants(i):
                    assert trace_emit is not None
                    trace_emit(
                        i,
                        pop,
                        leaf_local,
                        obj,
                        origin_root,
                        origin_pop,
                        cost,
                        float(sizes[obj]),
                        False,
                        False,
                    )
            i += 1
    result = collector.result("NO-CACHE")
    if observer is not None and rec is not None:
        observer.finish_run(rec, result)
    return result
