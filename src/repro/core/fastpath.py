"""Flat-array fast path for the request-level simulator.

``Simulator(engine="fast")`` routes :meth:`Simulator.run` through this
module.  The fast engine is *observationally identical* to the
reference per-request loop — the differential suite
(``tests/core/test_fastpath_equivalence.py``) asserts field-for-field
equal :class:`SimulationResult` objects — but restructures the work so
CPython spends its time on arithmetic instead of attribute lookups:

* the workload's NumPy request columns are converted to flat Python
  lists one chunk at a time as the stream arrives (per-request
  ``int(arr[i])`` extraction is the reference loop's single biggest
  cost, and per-chunk conversion keeps peak memory O(chunk) for
  streamed workloads);
* per-``(serving node, leaf)`` latency, response-path link ids, and
  insertable cache nodes are computed once through the reference
  :class:`~repro.topology.network.Network` oracles and memoized — so
  every float and every link ordering is bit-identical by construction;
* cache state lives in the flat structs of :mod:`repro.cache.fast`
  (membership bitmaps + insertion-ordered dicts) instead of
  ``OrderedDict`` objects behind two layers of method calls;
* metrics accumulate into preallocated flat counters and are converted
  to the NumPy arrays of :class:`SimulationResult` once, at the end,
  with the same reduction calls the reference collector uses.

The routing walks (shortest-path, scoped nearest-replica, global
oracle), capacity bookkeeping, failure fallbacks, and the probabilistic
insertion RNG consume state in exactly the reference order, so cache
contents — and therefore every downstream decision — never diverge.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..cache import InfiniteCache
from ..cache.fast import FastInfinite, make_fast_cache
from ..topology.network import HopCosts, Network
from ..workload.generator import Workload
from ..workload.stream import StreamingWorkload
from .engine import _stream_bounds
from .metrics import SimulationResult
from .routing import ReplicaDirectory

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from ..obs.sink import Observer
    from .engine import Simulator

__all__ = ["FastEngine", "fast_no_cache"]

#: Pinned seed for the probabilistic-insertion coin flips — must stay
#: identical to ``repro.core.engine._INSERT_SEED`` (duplicated rather
#: than imported to keep the runtime import DAG acyclic); the
#: differential suite pins the engines' streams to each other.
_INSERT_SEED = 0xC0FFEE


class FastEngine:
    """One-shot fast executor for a configured :class:`Simulator`.

    Built inside :meth:`Simulator.run`; reads the simulator's validated
    configuration and rebuilds cache/directory state in flat form
    (replaying any preload in the reference insertion order), so each
    ``run()`` starts from the constructor state.
    """

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        # The observability sink (None by default).  ``self._rec`` is the
        # per-run recorder; it stays None until run() opens a run, so the
        # preload replay below is never counted (matching the reference
        # engine, whose recorder also does not exist during __init__).
        self._observer = sim.observer
        self._rec = None
        network = sim.network
        workload = sim.workload
        self._network = network
        self._costs = sim.costs
        ts = network.tree_size
        self._ts = ts
        num_objects = workload.num_objects

        # Per-object tables as flat Python lists (one-time conversion).
        # Request columns are NOT materialized here: run() converts them
        # chunk by chunk as the workload streams through.
        self._sizes = workload.sizes.tolist()
        self._origins = workload.origins.tolist()

        # Cache-enabled locals as an O(1) bitmap.
        self._is_cache = bytearray(ts)
        for local in sorted(sim._cache_local_set):
            self._is_cache[local] = 1
        self._depth = [network.tree.depth_of(local) for local in range(ts)]

        # Flat cache structs mirroring the reference caches' capacities
        # (multipliers already applied by the Simulator constructor).
        arch = sim.architecture
        num_nodes = network.num_nodes
        self._caches: list = [None] * num_nodes
        #: Shared views of each struct's membership bitmap / order dict,
        #: indexed by global node id — the hot loop reads these directly
        #: (same underlying objects, so struct calls stay consistent).
        self._members: list = [None] * num_nodes
        self._orders: list = [None] * num_nodes
        self._capacities: list = [0.0] * num_nodes
        for node, ref_cache in sim.caches.items():
            if isinstance(ref_cache, InfiniteCache):
                struct = FastInfinite(num_objects)
            else:
                struct = make_fast_cache(
                    sim.policy, ref_cache.capacity, num_objects, self._sizes
                )
                self._capacities[node] = struct.capacity
                if hasattr(struct, "order"):
                    self._orders[node] = struct.order
            self._caches[node] = struct
            # LFU's frequency table doubles as its membership test
            # (freq > 0 iff cached), so every policy exposes an O(1)
            # truthy-per-object view here.
            self._members[node] = getattr(struct, "member", None)
            if self._members[node] is None:
                self._members[node] = struct.freq
        self._directory = (
            ReplicaDirectory(network, failed_nodes=sim._failed)
            if arch.routing == "nr-global"
            else None
        )
        if sim._preload:
            for node, objs in sim._preload.items():
                for obj in objs:
                    self._insert_directory_aware(node, int(obj))
        #: Post-preload used-budget snapshot; the single source of truth
        #: when the inline LRU insert path is active (the structs'
        #: ``insert`` is never called on that configuration).
        self._useds: list = [
            getattr(struct, "used", 0.0) if struct is not None else 0.0
            for struct in self._caches
        ]

        # Memoized per-(serving, leaf) path data; filled on first use.
        self._path_entries: dict[int, tuple[float, tuple[int, ...], tuple[int, ...]]] = {}

    # ------------------------------------------------------------------
    # Path memoization
    # ------------------------------------------------------------------
    def _path_entry(
        self, serving: int, leaf_gid: int
    ) -> tuple[float, tuple[int, ...], tuple[int, ...]]:
        """(latency, response links, insertable cache nodes) for one pair.

        Computed through the reference Network oracles so the float
        arithmetic and link ordering match the reference engine bit for
        bit; insertables are pre-filtered to cache-enabled, non-failed
        nodes in response-path order (the exact sequence the reference
        insertion loop — and its probabilistic RNG — visits).
        """
        network = self._network
        ts = self._ts
        is_cache = self._is_cache
        failed = self._sim._failed
        cost = network.path_cost(serving, leaf_gid, self._costs)
        links = tuple(network.path_links(serving, leaf_gid))
        inserts = tuple(
            node
            for node in network.path_nodes(serving, leaf_gid)[1:]
            if is_cache[node % ts] and node not in failed
        )
        entry = (cost, links, inserts)
        self._path_entries[serving * network.num_nodes + leaf_gid] = entry
        return entry

    # ------------------------------------------------------------------
    # Directory-aware insertion (nr-global only)
    # ------------------------------------------------------------------
    def _insert_directory_aware(self, node: int, obj: int) -> None:
        cache = self._caches[node]
        directory = self._directory
        rec = self._rec
        if directory is None:
            evicted = cache.insert(obj)
            if rec is not None:
                rec.copies[node] += 1
                rec.evictions[node] += len(evicted)
            return
        was_cached = obj in cache
        evicted = cache.insert(obj)
        for victim in evicted:
            directory.remove(victim, node)
        if not was_cached and obj in cache:
            directory.add(obj, node)
        if rec is not None:
            rec.copies[node] += 1
            rec.evictions[node] += len(evicted)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Simulate the full request stream with flat state."""
        sim = self._sim
        network = self._network
        arch = sim.architecture
        routing = arch.routing
        ts = self._ts
        num_nodes = network.num_nodes
        workload = sim.workload
        sizes = self._sizes
        origins = self._origins
        depth = self._depth
        is_cache = self._is_cache
        caches = self._caches
        members = self._members
        orders = self._orders
        capacities = self._capacities
        useds = self._useds
        chains = network._chain
        core_paths = network._core_paths
        core_dist = network._core_dist
        failed = sim._failed
        any_failed = bool(failed)
        cap = sim._capacity
        coop_siblings = sim._coop_siblings
        cooperation = arch.cooperation
        nr_scope = sim._nr_scope_order
        directory = self._directory
        nearest_within = directory.nearest_within if directory else None
        frozen = sim.frozen_caches
        root_cached = bool(is_cache[0])
        path_entries = self._path_entries
        entry_of = self._path_entry

        insertion = arch.insertion
        ins_everywhere = insertion == "everywhere"
        ins_lcd = insertion == "lcd"
        insert_probability = arch.insertion_probability
        insert_random = np.random.default_rng(_INSERT_SEED).random

        # Policy flags for the membership-first hot path: misses need no
        # struct call at all; hits refresh recency inline (LRU), bump a
        # frequency class (LFU), or do nothing (FIFO / infinite).
        lru_mode = sim.policy == "lru" and not arch.infinite
        lfu_mode = sim.policy == "lfu" and not arch.infinite
        # Inline the entire insert when the configuration allows it: the
        # dominant LRU + copy-everywhere + no-directory case.
        inline_lru_insert = lru_mode and ins_everywhere and directory is None
        inline_inf_insert = arch.infinite and ins_everywhere and directory is None

        num_requests, first_measured = _stream_bounds(
            workload, sim.warmup_fraction
        )

        # Observability: everything below is gated on ``observing`` (a
        # plain local bool), so the disabled default costs one predicted
        # branch per site and allocates nothing (lint rule O501).
        observer = self._observer
        rec = None
        rec_serves = rec_copies = rec_evicts = None
        trace_wants = None
        trace_emit = None
        observing = False
        if observer is not None:
            rec = observer.start_run(
                arch.name, routing, num_nodes, num_requests, first_measured
            )
            self._rec = rec
            rec_serves = rec.serves
            rec_copies = rec.copies
            rec_evicts = rec.evictions
            observing = True
            if observer.tracer is not None:
                trace_wants = observer.tracer.wants
                trace_emit = observer.tracer.emit_request

        measured = 0
        total_latency = 0.0
        cache_served = 0
        coop_served = 0
        fallback_served = 0
        link_transfers = [0.0] * network.num_links
        origin_serves = [0.0] * network.num_pops

        sp_mode = routing == "sp"
        nr_mode = routing == "nr"

        i = -1  # running global request index across chunks
        for req_chunk in workload.chunks():
            cpops = req_chunk.pops.tolist()
            cleaves = req_chunk.leaves.tolist()
            cobjects = req_chunk.objects.tolist()
            for i, (pop, leaf_local, obj) in enumerate(
                zip(cpops, cleaves, cobjects), start=i + 1
            ):
                origin_pop = origins[obj]
                base = pop * ts
                leaf_gid = base + leaf_local
                fallback = False
                coop = False
                serving = -1
                served_origin = None

                if sp_mode:
                    for local in chains[leaf_local]:
                        if local == 0 and origin_pop == pop:
                            break  # reached the origin store
                        if is_cache[local]:
                            node = base + local
                            if any_failed and node in failed:
                                fallback = True  # walk past the dead cache
                                continue
                            if members[node][obj]:
                                if lru_mode:
                                    order = orders[node]
                                    del order[obj]
                                    order[obj] = None
                                elif lfu_mode:
                                    caches[node].lookup(obj)
                                if cap is None or cap.try_serve(node, i):
                                    serving = node
                                    break
                            elif cooperation:
                                for sib_local in coop_siblings[local]:
                                    sib = base + sib_local
                                    if any_failed and sib in failed:
                                        continue
                                    if members[sib][obj]:
                                        if lru_mode:
                                            order = orders[sib]
                                            del order[obj]
                                            order[obj] = None
                                        elif lfu_mode:
                                            caches[sib].lookup(obj)
                                        if cap is None or cap.try_serve(sib, i):
                                            serving = sib
                                            coop = True
                                            break
                                if serving >= 0:
                                    break
                    if serving < 0 and origin_pop != pop and root_cached:
                        for transit_pop in core_paths[pop][origin_pop][1:]:
                            if transit_pop == origin_pop:
                                break
                            node = transit_pop * ts
                            if any_failed and node in failed:
                                fallback = True
                                continue
                            if members[node][obj]:
                                if lru_mode:
                                    order = orders[node]
                                    del order[obj]
                                    order[obj] = None
                                elif lfu_mode:
                                    caches[node].lookup(obj)
                                if cap is None or cap.try_serve(node, i):
                                    serving = node
                                    break
                elif nr_mode:
                    own_origin = origin_pop == pop
                    origin_tree_dist = depth[leaf_local]
                    for dist, local in nr_scope[leaf_local]:
                        if own_origin and dist >= origin_tree_dist:
                            break  # the origin store is at least as close
                        if is_cache[local]:
                            node = base + local
                            if any_failed and node in failed:
                                fallback = True
                                continue
                            if members[node][obj]:
                                if lru_mode:
                                    order = orders[node]
                                    del order[obj]
                                    order[obj] = None
                                elif lfu_mode:
                                    caches[node].lookup(obj)
                                if cap is None or cap.try_serve(node, i):
                                    serving = node
                                    break
                    if serving < 0 and not own_origin and root_cached:
                        for transit_pop in core_paths[pop][origin_pop][1:]:
                            if transit_pop == origin_pop:
                                break
                            node = transit_pop * ts
                            if any_failed and node in failed:
                                fallback = True
                                continue
                            if members[node][obj]:
                                if lru_mode:
                                    order = orders[node]
                                    del order[obj]
                                    order[obj] = None
                                elif lfu_mode:
                                    caches[node].lookup(obj)
                                if cap is None or cap.try_serve(node, i):
                                    serving = node
                                    break
                else:  # nr-global oracle
                    origin_root = origin_pop * ts
                    origin_dist = depth[leaf_local] + core_dist[pop][origin_pop]
                    # Replicas beyond the origin can never serve (ties
                    # prefer the replica: same latency, less origin load),
                    # so the bounded query prunes PoPs nearest() would
                    # still scan while picking the identical winner.
                    found = nearest_within(obj, leaf_gid, origin_dist)
                    if found is not None:
                        node = found[0]
                        caches[node].lookup(obj)
                        if cap is None or cap.try_serve(node, i):
                            serving = node

                if serving < 0:
                    serving = origin_pop * ts
                    served_origin = origin_pop
                    if cap is not None:
                        cap.force_serve(serving, i)

                size = sizes[obj]
                if serving != leaf_gid:
                    entry = path_entries.get(serving * num_nodes + leaf_gid)
                    if entry is None:
                        entry = entry_of(serving, leaf_gid)
                    cost, links, inserts = entry
                    if observing:
                        if i >= first_measured:
                            rec_serves[serving] += 1
                        if trace_wants is not None and trace_wants(i):
                            trace_emit(
                                i,
                                pop,
                                leaf_local,
                                obj,
                                serving,
                                served_origin,
                                cost,
                                float(size),
                                coop,
                                fallback,
                            )
                    if i >= first_measured:
                        measured += 1
                        total_latency += cost
                        for link in links:
                            link_transfers[link] += size
                        if fallback:
                            fallback_served += 1
                        if served_origin is None:
                            if coop:
                                coop_served += 1
                            else:
                                cache_served += 1
                        else:
                            origin_serves[served_origin] += 1
                    if not frozen:
                        if inline_lru_insert:
                            for node in inserts:
                                if observing:
                                    rec_copies[node] += 1
                                member = members[node]
                                if member[obj]:
                                    order = orders[node]
                                    del order[obj]
                                    order[obj] = None
                                else:
                                    node_cap = capacities[node]
                                    if size <= node_cap:
                                        used = useds[node]
                                        order = orders[node]
                                        while used + size > node_cap:
                                            victim = next(iter(order))
                                            del order[victim]
                                            member[victim] = 0
                                            used -= sizes[victim]
                                            if observing:
                                                rec_evicts[node] += 1
                                        order[obj] = None
                                        member[obj] = 1
                                        useds[node] = used + size
                        elif inline_inf_insert:
                            for node in inserts:
                                members[node][obj] = 1
                                if observing:
                                    rec_copies[node] += 1
                        elif directory is None:
                            if ins_everywhere:
                                for node in inserts:
                                    evicted = caches[node].insert(obj)
                                    if observing:
                                        rec_copies[node] += 1
                                        rec_evicts[node] += len(evicted)
                            elif ins_lcd:
                                # Leave-copy-down: only the first cache below
                                # the serving node takes a copy.
                                if inserts:
                                    evicted = caches[inserts[0]].insert(obj)
                                    if observing:
                                        rec_copies[inserts[0]] += 1
                                        rec_evicts[inserts[0]] += len(evicted)
                            else:  # probabilistic
                                for node in inserts:
                                    if insert_random() < insert_probability:
                                        evicted = caches[node].insert(obj)
                                        if observing:
                                            rec_copies[node] += 1
                                            rec_evicts[node] += len(evicted)
                        else:
                            if ins_everywhere:
                                for node in inserts:
                                    self._insert_directory_aware(node, obj)
                            elif ins_lcd:
                                if inserts:
                                    self._insert_directory_aware(inserts[0], obj)
                            else:  # probabilistic
                                for node in inserts:
                                    if insert_random() < insert_probability:
                                        self._insert_directory_aware(node, obj)
                elif i >= first_measured:
                    measured += 1
                    if fallback:
                        fallback_served += 1
                    if served_origin is None:
                        if coop:
                            coop_served += 1
                        else:
                            cache_served += 1
                    else:
                        origin_serves[served_origin] += 1
                    if observing:
                        rec_serves[serving] += 1
                        if trace_wants is not None and trace_wants(i):
                            trace_emit(
                                i,
                                pop,
                                leaf_local,
                                obj,
                                serving,
                                served_origin,
                                0.0,
                                float(size),
                                coop,
                                fallback,
                            )
                elif observing and trace_wants is not None and trace_wants(i):
                    # Warmup request served at its own leaf: nothing is
                    # measured, but the trace still records it (the
                    # reference engine traces every sampled request).
                    trace_emit(
                        i,
                        pop,
                        leaf_local,
                        obj,
                        serving,
                        served_origin,
                        0.0,
                        float(size),
                        coop,
                        fallback,
                    )

        result = SimulationResult.from_counters(
            architecture=arch.name,
            num_requests=measured,
            total_latency=total_latency,
            link_transfers=link_transfers,
            origin_serves=origin_serves,
            cache_served=cache_served,
            coop_served=coop_served,
            fallback_served=fallback_served,
        )
        if observer is not None and rec is not None:
            self._rec = None
            observer.finish_run(rec, result)
        return result

def fast_no_cache(
    network: Network,
    workload: Workload | StreamingWorkload,
    costs: HopCosts,
    warmup_fraction: float,
    observer: "Observer | None" = None,
) -> SimulationResult:
    """Flat-state twin of :func:`repro.core.engine.simulate_no_cache`."""
    ts = network.tree_size
    num_nodes = network.num_nodes
    sizes = workload.sizes.tolist()
    origins = workload.origins.tolist()
    num_requests, first_measured = _stream_bounds(workload, warmup_fraction)

    measured = 0
    total_latency = 0.0
    link_transfers = [0.0] * network.num_links
    origin_serves = [0.0] * network.num_pops
    path_entries: dict[int, tuple[float, tuple[int, ...]]] = {}
    path_cost = network.path_cost
    path_links = network.path_links

    rec = None
    rec_serves = None
    trace_wants = None
    trace_emit = None
    observing = False
    if observer is not None:
        rec = observer.start_run(
            "NO-CACHE", "origin", num_nodes, num_requests, first_measured
        )
        rec_serves = rec.serves
        observing = True
        if observer.tracer is not None:
            trace_wants = observer.tracer.wants
            trace_emit = observer.tracer.emit_request

    i = 0
    for req_chunk in workload.chunks():
        n = len(req_chunk)
        if i + n <= first_measured:
            i += n  # the whole chunk is warmup: skip it wholesale
            continue
        for pop, leaf_local, obj in zip(
            req_chunk.pops.tolist(),
            req_chunk.leaves.tolist(),
            req_chunk.objects.tolist(),
        ):
            if i < first_measured:
                i += 1
                continue
            origin_pop = origins[obj]
            leaf_gid = pop * ts + leaf_local
            origin_root = origin_pop * ts
            key = origin_root * num_nodes + leaf_gid
            entry = path_entries.get(key)
            if entry is None:
                entry = (
                    path_cost(origin_root, leaf_gid, costs),
                    tuple(path_links(origin_root, leaf_gid)),
                )
                path_entries[key] = entry
            cost, links = entry
            measured += 1
            total_latency += cost
            size = sizes[obj]
            for link in links:
                link_transfers[link] += size
            origin_serves[origin_pop] += 1
            if observing:
                rec_serves[origin_root] += 1
                if trace_wants is not None and trace_wants(i):
                    trace_emit(
                        i,
                        pop,
                        leaf_local,
                        obj,
                        origin_root,
                        origin_pop,
                        cost,
                        float(size),
                        False,
                        False,
                    )
            i += 1

    result = SimulationResult.from_counters(
        architecture="NO-CACHE",
        num_requests=measured,
        total_latency=total_latency,
        link_transfers=link_transfers,
        origin_serves=origin_serves,
        cache_served=0,
        coop_served=0,
    )
    if observer is not None and rec is not None:
        observer.finish_run(rec, result)
    return result
