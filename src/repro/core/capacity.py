"""Request-serving capacity limits (Section 5.1, "Other parameters").

"We vary the request serving capacity.  In this case, the number of
queries each node can serve in a certain period of time is limited.  If
a request arrives at a cache that is overloaded, this request is
redirected to the next cache on the query path (or the origin)."

Time is measured in requests: every ``window`` consecutive requests form
one period, and each node may serve at most ``per_window`` of them.
Origins are exempt by default — somebody has to serve the request.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CapacityModel:
    """Static description of the serving-capacity limit."""

    per_window: int
    window: int = 1000

    def __post_init__(self) -> None:
        if self.per_window < 1:
            raise ValueError("per_window must be >= 1")
        if self.window < 1:
            raise ValueError("window must be >= 1")


class CapacityTracker:
    """Per-node served-request counters over sliding request windows."""

    def __init__(self, model: CapacityModel, num_nodes: int) -> None:
        self._model = model
        self._counts = [0] * num_nodes
        self._window_id = 0
        self.rejections = 0

    def try_serve(self, node: int, request_index: int) -> bool:
        """Reserve one serving slot at ``node``; False when overloaded."""
        window_id = request_index // self._model.window
        if window_id != self._window_id:
            self._window_id = window_id
            self._counts = [0] * len(self._counts)
        if self._counts[node] >= self._model.per_window:
            self.rejections += 1
            return False
        self._counts[node] += 1
        return True

    def force_serve(self, node: int, request_index: int) -> None:
        """Record a serve that cannot be refused (the origin)."""
        window_id = request_index // self._model.window
        if window_id != self._window_id:
            self._window_id = window_id
            self._counts = [0] * len(self._counts)
        self._counts[node] += 1
