"""Nearest-replica routing support (the ICN-NR design).

The paper "conservatively assume[s] that we can find and route to the
nearest replica with zero overhead" — so this directory is an oracle: it
tracks every cached copy and answers exact nearest-replica queries, and
the lookup itself is never charged any latency.

Queries are pruned with a per-source ordering of PoPs by core distance:
once the lower bound ``depth(leaf) + core_dist`` of the next PoP can no
longer beat the best replica found, the scan stops.  Because popular
objects are usually replicated near the requester, the typical query
touches only a handful of PoPs.
"""

from __future__ import annotations

from ..topology.network import Network


class ReplicaDirectory:
    """Exact, zero-cost index of which nodes currently cache each object.

    ``failed_nodes`` marks caches that are down: the directory refuses
    to record replicas there, so nearest-replica answers always route
    around failures.
    """

    def __init__(
        self, network: Network, failed_nodes: frozenset[int] = frozenset()
    ) -> None:
        self._network = network
        self._failed = frozenset(failed_nodes)
        self._tree = network.tree
        self._tree_size = network.tree_size
        self._depth = network.tree._depth_of  # depth by tree-local index
        # object -> pop -> set of tree-local holder indices.
        self._holders: dict[int, dict[int, set[int]]] = {}
        # For each source PoP, other PoPs sorted by core distance.
        dist = network._core_dist
        self._pop_order = [
            sorted(range(network.num_pops), key=lambda q: dist[p][q])
            for p in range(network.num_pops)
        ]
        self._core_dist = dist

    def add(self, obj: int, node: int) -> None:
        """Record that ``node`` now caches ``obj`` (failed nodes ignored)."""
        if node in self._failed:
            return
        pop, local = divmod(node, self._tree_size)
        self._holders.setdefault(obj, {}).setdefault(pop, set()).add(local)

    def remove(self, obj: int, node: int) -> None:
        """Record that ``node`` evicted ``obj``."""
        pop, local = divmod(node, self._tree_size)
        by_pop = self._holders.get(obj)
        if by_pop is None:
            raise KeyError(f"object {obj} has no recorded replicas")
        locals_ = by_pop[pop]
        locals_.remove(local)
        if not locals_:
            del by_pop[pop]
            if not by_pop:
                del self._holders[obj]

    def num_replicas(self, obj: int) -> int:
        """Number of cached copies of ``obj`` across the network."""
        by_pop = self._holders.get(obj)
        if not by_pop:
            return 0
        return sum(len(locals_) for locals_ in by_pop.values())

    def holders(self, obj: int) -> list[int]:
        """Global node ids of every cache currently holding ``obj``."""
        by_pop = self._holders.get(obj, {})
        return [
            pop * self._tree_size + local
            for pop, locals_ in by_pop.items()
            for local in locals_
        ]

    def nearest(self, obj: int, leaf: int) -> tuple[int, int] | None:
        """Closest cached copy of ``obj`` to the request leaf.

        Returns ``(node_gid, hop_distance)`` or ``None`` when the object
        is not cached anywhere.  Distances are hops; the caller compares
        against the origin's distance to pick the serving node.
        """
        by_pop = self._holders.get(obj)
        if not by_pop:
            return None
        pop, leaf_local = divmod(leaf, self._tree_size)
        depth = self._depth
        leaf_depth = depth[leaf_local]
        tree = self._tree
        best_dist = -1
        best_node = -1
        # Same-PoP holders first: exact tree distances.
        same = by_pop.get(pop)
        if same:
            for local in same:
                d = tree.distance(leaf_local, local)
                if best_dist == -1 or d < best_dist:
                    best_dist, best_node = d, pop * self._tree_size + local
                    if d == 0:
                        return best_node, 0
        core_dist = self._core_dist[pop]
        for other in self._pop_order[pop]:
            if other == pop:
                continue
            lower_bound = leaf_depth + core_dist[other]
            if best_dist != -1 and lower_bound >= best_dist:
                break  # PoPs are distance-sorted: nothing further can win.
            locals_ = by_pop.get(other)
            if not locals_:
                continue
            min_holder_depth = min(depth[local] for local in locals_)
            d = lower_bound + min_holder_depth
            if best_dist == -1 or d < best_dist:
                best_dist = d
                best_local = next(
                    local for local in locals_ if depth[local] == min_holder_depth
                )
                best_node = other * self._tree_size + best_local
        return (best_node, best_dist) if best_dist != -1 else None

    def nearest_within(
        self, obj: int, leaf: int, bound: int
    ) -> tuple[int, int] | None:
        """Closest cached copy of ``obj`` at hop distance ``<= bound``.

        ``bound`` is typically the leaf's hop distance to the object's
        origin: a replica farther than that can never serve, so seeding
        the scan with the bound prunes whole PoPs that :meth:`nearest`
        would still examine.  When a replica qualifies, the returned
        node is exactly the one :meth:`nearest` would return (same scan
        order, same first-minimum tie-break); when none does, the
        answer is ``None``.  Distances are integer hops, so the cutoff
        ``bound + 1`` with strict ``<`` admits exactly ``d <= bound``.
        """
        by_pop = self._holders.get(obj)
        if not by_pop:
            return None
        pop, leaf_local = divmod(leaf, self._tree_size)
        depth = self._depth
        leaf_depth = depth[leaf_local]
        tree = self._tree
        best_dist = bound + 1
        best_node = -1
        same = by_pop.get(pop)
        if same:
            for local in same:
                d = tree.distance(leaf_local, local)
                if d < best_dist:
                    best_dist, best_node = d, pop * self._tree_size + local
                    if d == 0:
                        return best_node, 0
        core_dist = self._core_dist[pop]
        for other in self._pop_order[pop]:
            if other == pop:
                continue
            lower_bound = leaf_depth + core_dist[other]
            if lower_bound >= best_dist:
                break  # PoPs are distance-sorted: nothing further can win.
            locals_ = by_pop.get(other)
            if not locals_:
                continue
            min_holder_depth = min(depth[local] for local in locals_)
            d = lower_bound + min_holder_depth
            if d < best_dist:
                best_dist = d
                best_local = next(
                    local for local in locals_ if depth[local] == min_holder_depth
                )
                best_node = other * self._tree_size + best_local
        return (best_node, best_dist) if best_node != -1 else None
